"""Synthetic NREF-shaped database.

Six tables mirroring the Non-Redundant Reference Protein database used
in the paper's evaluation: ``protein``, ``sequence``, ``organism``,
``taxonomy``, ``source`` and ``neighboring_seq``.  Data is generated
deterministically from a seed, with skewed value distributions (zipfian
taxa, log-normal-ish sequence lengths) so that histograms actually
matter for the optimizer.

Tables are created as **heap** with a small main-page budget — the
unoptimized configuration of the paper, whose overflow pages trip the
analyzer's 10 % rule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.catalog.schema import Column, DataType, IndexDef, TableSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database

_AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"
_RANKS = ("species", "genus", "family", "order", "class", "phylum")
_SOURCE_NAMES = ("PIR", "SwissProt", "TrEMBL", "GenPept", "PDB",
                 "RefSeq", "EMBL", "DDBJ", "PRF", "UniParc")


@dataclass(frozen=True)
class NrefScale:
    """Size knobs of the synthetic database."""

    proteins: int = 2000
    organisms_per_protein: float = 1.2
    neighbors_per_protein: float = 2.0
    taxa: int = 100
    sources: int = 10
    min_sequence_length: int = 30
    max_sequence_length: int = 120
    seed: int = 20090329  # the ICDE 2009 conference opening day

    @property
    def approximate_rows(self) -> int:
        return int(self.proteins * (2 + self.organisms_per_protein
                                    + self.neighbors_per_protein)
                   + self.taxa + self.sources)


PROTEIN = TableSchema("protein", (
    Column("nref_id", DataType.VARCHAR, 11, nullable=False),
    Column("name", DataType.VARCHAR, 60),
    Column("length", DataType.INT),
    Column("mol_weight", DataType.FLOAT),
    Column("tax_id", DataType.INT),
    Column("source_id", DataType.INT),
), primary_key=("nref_id",))

SEQUENCE = TableSchema("sequence", (
    Column("nref_id", DataType.VARCHAR, 11, nullable=False),
    Column("sequence", DataType.TEXT),
    Column("crc", DataType.VARCHAR, 16),
    Column("ordinal", DataType.INT),
), primary_key=("nref_id",))

ORGANISM = TableSchema("organism", (
    Column("nref_id", DataType.VARCHAR, 11, nullable=False),
    Column("organism_name", DataType.VARCHAR, 60),
    Column("tax_id", DataType.INT),
))

TAXONOMY = TableSchema("taxonomy", (
    Column("tax_id", DataType.INT, nullable=False),
    Column("lineage", DataType.VARCHAR, 120),
    Column("rank", DataType.VARCHAR, 20),
    Column("parent_tax_id", DataType.INT),
), primary_key=("tax_id",))

SOURCE = TableSchema("source", (
    Column("source_id", DataType.INT, nullable=False),
    Column("source_name", DataType.VARCHAR, 40),
    Column("db_release", DataType.VARCHAR, 16),
), primary_key=("source_id",))

NEIGHBORING_SEQ = TableSchema("neighboring_seq", (
    Column("nref_id", DataType.VARCHAR, 11, nullable=False),
    Column("neighbor_id", DataType.VARCHAR, 11, nullable=False),
    Column("similarity", DataType.FLOAT),
    Column("rank", DataType.INT),
))

NREF_SCHEMAS = (PROTEIN, SEQUENCE, ORGANISM, TAXONOMY, SOURCE,
                NEIGHBORING_SEQ)
NREF_TABLE_NAMES = tuple(schema.name for schema in NREF_SCHEMAS)


def nref_id(i: int) -> str:
    return f"NF{i:08d}"


def _zipf_tax(rng: random.Random, taxa: int) -> int:
    """Skewed taxon choice: low tax_ids are far more common."""
    value = int(rng.paretovariate(1.2))
    return min(taxa, value)


def generate_rows(scale: NrefScale) -> dict[str, Iterator[tuple]]:
    """Row generators per table (deterministic for a given scale)."""
    rng = random.Random(scale.seed)

    taxonomy_rows = []
    for tax in range(1, scale.taxa + 1):
        taxonomy_rows.append((
            tax,
            f"cellular organisms; clade{tax % 12}; lineage{tax}",
            _RANKS[tax % len(_RANKS)],
            max(0, tax // 2),
        ))

    source_rows = []
    for source in range(1, scale.sources + 1):
        source_rows.append((
            source,
            _SOURCE_NAMES[(source - 1) % len(_SOURCE_NAMES)],
            f"rel-{2000 + source}",
        ))

    protein_rows = []
    sequence_rows = []
    organism_rows = []
    neighbor_rows = []
    for i in range(1, scale.proteins + 1):
        identifier = nref_id(i)
        length = rng.randint(scale.min_sequence_length,
                             scale.max_sequence_length)
        tax = _zipf_tax(rng, scale.taxa)
        protein_rows.append((
            identifier,
            f"protein {i} kinase-{i % 97}",
            length,
            round(length * 110.0 + rng.uniform(-500, 500), 2),
            tax,
            rng.randint(1, scale.sources),
        ))
        body = "".join(rng.choice(_AMINO_ACIDS) for _ in range(length))
        sequence_rows.append((
            identifier, body, f"{rng.getrandbits(32):08X}", i,
        ))
        organisms = max(1, round(rng.gauss(scale.organisms_per_protein, 0.5)))
        for _ in range(organisms):
            organism_tax = _zipf_tax(rng, scale.taxa)
            organism_rows.append((
                identifier,
                f"organism sp. {organism_tax}",
                organism_tax,
            ))
        neighbors = max(0, round(rng.gauss(scale.neighbors_per_protein, 1.0)))
        for rank in range(1, neighbors + 1):
            neighbor_rows.append((
                identifier,
                nref_id(rng.randint(1, scale.proteins)),
                round(rng.uniform(0.3, 1.0), 4),
                rank,
            ))

    return {
        "protein": iter(protein_rows),
        "sequence": iter(sequence_rows),
        "organism": iter(organism_rows),
        "taxonomy": iter(taxonomy_rows),
        "source": iter(source_rows),
        "neighboring_seq": iter(neighbor_rows),
    }


def create_nref_schema(database: "Database", main_pages: int = 8) -> None:
    """Create the six NREF tables as heaps (the unoptimized layout)."""
    for schema in NREF_SCHEMAS:
        database.create_table(schema, main_pages=main_pages)


def load_nref(database: "Database",
              scale: NrefScale | None = None,
              main_pages: int = 8) -> dict[str, int]:
    """Create and populate the NREF database; returns rows per table.

    Loading bypasses the SQL layer (like a bulk copy utility would), so
    the monitored experiments start from a populated database without a
    million INSERT statements in the history.
    """
    scale = scale or NrefScale()
    create_nref_schema(database, main_pages=main_pages)
    counts: dict[str, int] = {}
    for table, rows in generate_rows(scale).items():
        count = 0
        for row in rows:
            database.insert_row(table, row)
            count += 1
        counts[table] = count
    database.pool.flush_all()
    return counts


def reference_indexes() -> list[IndexDef]:
    """The manual DBA's 33-index reference set (standing in for the
    reference configuration of Consens et al. [17]).

    Deliberately generous — covering keys, foreign keys and common
    predicate columns across all six tables — which is exactly why it
    costs so much disk in figure 7."""
    specs: list[tuple[str, tuple[str, ...]]] = [
        # protein (8)
        ("protein", ("nref_id",)),
        ("protein", ("tax_id",)),
        ("protein", ("source_id",)),
        ("protein", ("length",)),
        ("protein", ("mol_weight",)),
        ("protein", ("tax_id", "source_id")),
        ("protein", ("tax_id", "length")),
        ("protein", ("name",)),
        # sequence (5)
        ("sequence", ("nref_id",)),
        ("sequence", ("crc",)),
        ("sequence", ("ordinal",)),
        ("sequence", ("nref_id", "ordinal")),
        ("sequence", ("crc", "ordinal")),
        # organism (6)
        ("organism", ("nref_id",)),
        ("organism", ("tax_id",)),
        ("organism", ("organism_name",)),
        ("organism", ("nref_id", "tax_id")),
        ("organism", ("tax_id", "organism_name")),
        ("organism", ("organism_name", "tax_id")),
        # taxonomy (5)
        ("taxonomy", ("tax_id",)),
        ("taxonomy", ("parent_tax_id",)),
        ("taxonomy", ("rank",)),
        ("taxonomy", ("lineage",)),
        ("taxonomy", ("rank", "tax_id")),
        # source (3)
        ("source", ("source_id",)),
        ("source", ("source_name",)),
        ("source", ("db_release",)),
        # neighboring_seq (6)
        ("neighboring_seq", ("nref_id",)),
        ("neighboring_seq", ("neighbor_id",)),
        ("neighboring_seq", ("similarity",)),
        ("neighboring_seq", ("rank",)),
        ("neighboring_seq", ("nref_id", "rank")),
        ("neighboring_seq", ("neighbor_id", "similarity")),
    ]
    return [
        IndexDef(name=f"ref_{table}_{'_'.join(columns)}",
                 table_name=table, column_names=columns)
        for table, columns in specs
    ]
