"""The engine instance: "one Ingres installation".

Owns the databases, the global lock manager, the session registry and
the plugged-in sensor object.  The paper's three experimental setups
map to:

* ``EngineInstance(sensors=NullSensors())`` — the *Original* build,
* ``EngineInstance(sensors=MonitorSensors(monitor))`` — *Monitoring*,
* the same plus an attached :class:`~repro.core.daemon.StorageDaemon`
  — *Daemon*.
"""

from __future__ import annotations

import itertools
import threading
from typing import TYPE_CHECKING, Any, Mapping

from repro import faultsim
from repro.clock import Clock, SystemClock
from repro.config import EngineConfig
from repro.core.sensors import NullSensors, Sensors
from repro.engine.database import Database
from repro.engine.locks import LockManager
from repro.engine.session import Session
from repro.errors import DuplicateObjectError, UnknownObjectError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.lockwitness import LockWitness


class EngineInstance:
    """A DBMS instance hosting databases and sessions."""

    def __init__(self, config: EngineConfig | None = None,
                 sensors: Sensors | None = None,
                 clock: Clock | None = None,
                 lock_witness: "LockWitness | None" = None) -> None:
        self.config = config or EngineConfig()
        self.sensors = sensors or NullSensors()
        self.clock = clock or SystemClock()
        self.lock_manager = LockManager(self.config.locks,
                                        witness=lock_witness)
        self._databases: dict[str, Database] = {}
        self._sessions: dict[int, Session] = {}
        self._session_ids = itertools.count(1)
        self._mutex = threading.Lock()
        self._peak_sessions = 0
        # Named providers behind health(): subsystems (daemon, overload
        # controller, supervisor, tuner) register a snapshot callable
        # at setup time; one entry per subsystem, never per request.
        self._health_sources: dict[str, Any] = \
            {}  # staticcheck: shared(_mutex); bounded(one-per-subsystem-registered-at-setup)
        # Failure points requested by the config (robustness testing);
        # armed on the process-global injector the seams evaluate.
        for spec in self.config.faults:
            faultsim.arm_from_spec(spec, clock=self.clock)

    # -- databases -----------------------------------------------------------

    def create_database(self, name: str) -> Database:
        key = name.lower()
        with self._mutex:
            if key in self._databases:
                raise DuplicateObjectError(f"database {name!r} already exists")
            database = Database(name, self.config, self.clock)
            self._databases[key] = database
            return database

    def attach_database(self, database: Database) -> Database:
        """Attach an existing Database object (e.g. one restored from a
        dump) to this instance so sessions can connect to it."""
        key = database.name.lower()
        with self._mutex:
            if key in self._databases:
                raise DuplicateObjectError(
                    f"database {database.name!r} already exists")
            self._databases[key] = database
            return database

    def database(self, name: str) -> Database:
        try:
            return self._databases[name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"database {name!r} does not exist") from None

    def has_database(self, name: str) -> bool:
        return name.lower() in self._databases

    def database_names(self) -> tuple[str, ...]:
        return tuple(self._databases)

    # -- sessions ---------------------------------------------------------------

    def connect(self, database_name: str) -> Session:
        """Open a session against a database."""
        database = self.database(database_name)
        with self._mutex:
            session_id = next(self._session_ids)
            session = Session(self, database, session_id)
            self._sessions[session_id] = session
            self._peak_sessions = max(self._peak_sessions,
                                      len(self._sessions))
        return session

    def on_session_closed(self, session: Session) -> None:
        with self._mutex:
            self._sessions.pop(session.session_id, None)

    @property
    def active_sessions(self) -> int:
        with self._mutex:
            return len(self._sessions)

    @property
    def peak_sessions(self) -> int:
        with self._mutex:
            return self._peak_sessions

    # -- the engine-wide health surface -------------------------------------

    def register_health_source(self, name: str,
                               provider: "Any") -> None:
        """Register a named snapshot provider for :meth:`health`.

        ``provider`` is a zero-argument callable returning a
        JSON-shaped value (the daemon's status, the overload
        controller's snapshot, ...); registering a name again replaces
        its provider.
        """
        with self._mutex:
            self._health_sources[name] = provider

    def health(self) -> dict[str, Any]:
        """One engine-wide health snapshot.

        Assembles the engine's own statistics plus every registered
        subsystem provider.  Never raises: a provider that fails
        contributes ``{"error": ...}`` under its name instead of
        breaking the surface — health must stay readable precisely when
        things are going wrong.
        """
        with self._mutex:
            sources = dict(self._health_sources)
        snapshot: dict[str, Any] = {
            "generated_at": self.clock.now(),
            "engine": dict(self.system_statistics()),
        }
        for name, provider in sources.items():
            try:
                snapshot[name] = provider()
            except Exception as error:  # noqa: BLE001 - the health surface
                # reports sick subsystems, it never propagates them.
                snapshot[name] = {
                    "error": f"{type(error).__name__}: {error}"}
        return snapshot

    # -- system-wide statistics (the monitor's third data category) ---------------

    def system_statistics(self) -> Mapping[str, Any]:
        """A snapshot of the instance-wide performance indicators."""
        locks = self.lock_manager.statistics()
        pool_hits = 0
        pool_misses = 0
        physical_reads = 0
        physical_writes = 0
        for database in self._databases.values():
            stats = database.pool.stats()
            pool_hits += stats.hits
            pool_misses += stats.misses
            counters = database.disk.counters()
            physical_reads += counters.reads
            physical_writes += counters.writes
        return {
            "current_sessions": self.active_sessions,
            "peak_sessions": self.peak_sessions,
            "locks_held": locks.locks_held,
            "lock_waiters": locks.transactions_waiting,
            "lock_requests": locks.total_requests,
            "lock_waits": locks.total_waits,
            "deadlocks": locks.total_deadlocks,
            "lock_timeouts": locks.total_timeouts,
            "cache_hits": pool_hits,
            "cache_misses": pool_misses,
            "physical_reads": physical_reads,
            "physical_writes": physical_writes,
        }
