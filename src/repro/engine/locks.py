"""Table-level lock manager with waits-for deadlock detection.

The lock system is both a correctness substrate (serializing writers)
and a *monitored subsystem*: its counters (locks in use, lock waits,
deadlocks) feed the system-wide statistics channel that figure 8 of the
paper visualizes.

Lock order
----------

``LockManager._mutex`` (shared with the ``_granted`` condition that
wraps it) is a *leaf* lock: nothing else is acquired while it is held,
and the only blocking call under it is ``Condition.wait`` — which
releases the mutex while waiting.  Code that needs both an engine lock
and the buffer-pool latch must acquire the engine lock first and never
call back into the lock manager while holding the latch; the deep
staticcheck phase (LCK003/LCK004) enforces this ordering globally.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.config import LockConfig
from repro.errors import DeadlockError, LockError, LockTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.lockwitness import LockWitness


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class _Resource:
    """Lock state of one table."""

    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


@dataclass(frozen=True)
class LockStatistics:
    """Snapshot of lock-system counters for the monitor."""

    locks_held: int
    transactions_waiting: int
    total_requests: int
    total_waits: int
    total_deadlocks: int
    total_timeouts: int


class LockManager:
    """Grants S/X table locks to transactions; detects deadlocks."""

    def __init__(self, config: LockConfig | None = None,
                 witness: "LockWitness | None" = None) -> None:
        self.config = config or LockConfig()
        self._mutex = threading.Lock()
        if witness is not None:
            # Re-bound through the witness wrapper; the plain
            # assignment above stays first so the static lock model
            # keeps its type evidence for this attribute.
            self._mutex = witness.wrap(
                self._mutex, "repro.engine.locks.LockManager._mutex")
        self._granted = threading.Condition(self._mutex)
        # _granted wraps _mutex, so holding either guards the state.
        self._resources: dict[str, _Resource] = \
            {}  # staticcheck: shared(_granted, _mutex)
        self._held_by_txn: dict[int, set[str]] = \
            {}  # staticcheck: shared(_granted, _mutex)
        self._total_requests = 0  # staticcheck: shared(_granted, _mutex)
        self._total_waits = 0  # staticcheck: shared(_granted, _mutex)
        self._total_deadlocks = 0  # staticcheck: shared(_granted, _mutex)
        self._total_timeouts = 0  # staticcheck: shared(_granted, _mutex)

    # -- public API --------------------------------------------------------

    # staticcheck: hotpath
    def acquire(self, txn_id: int, resource: str, mode: LockMode,
                timeout_s: float | None = None) -> None:
        """Block until the lock is granted.

        Raises :class:`DeadlockError` if this request closes a cycle in
        the waits-for graph (the requester is the victim) and
        :class:`LockTimeoutError` after ``timeout_s`` seconds.
        """
        deadline = timeout_s if timeout_s is not None \
            else self.config.wait_timeout_s
        with self._granted:
            self._total_requests += 1
            state = self._resources.get(resource)
            if state is None:
                state = self._resources[resource] = \
                    _Resource()  # staticcheck: allocfree(first-touch-per-resource-only)
            if self._try_grant(state, txn_id, mode):
                self._note_held(txn_id, resource)
                return
            self._total_waits += 1
            state.waiters.append((txn_id, mode))
            waited = 0.0
            interval = self.config.deadlock_check_interval_s
            granted_wait = self._granted.wait
            try:
                while True:
                    if self._creates_deadlock(txn_id):
                        self._total_deadlocks += 1
                        raise DeadlockError(
                            f"transaction {txn_id} deadlocked waiting for "
                            f"{mode.value} lock on {resource!r}"
                        )
                    if self._try_grant(state, txn_id, mode):
                        self._note_held(txn_id, resource)
                        return
                    if waited >= deadline:
                        self._total_timeouts += 1
                        raise LockTimeoutError(
                            f"transaction {txn_id} timed out after "
                            f"{waited:.1f}s waiting for {mode.value} lock "
                            f"on {resource!r}"
                        )
                    granted_wait(interval)
                    waited += interval
            finally:
                state.waiters.remove((txn_id, mode))

    # staticcheck: hotpath
    def release_all(self, txn_id: int) -> int:
        """Release every lock held by ``txn_id``; returns how many."""
        with self._granted:
            resources = self._held_by_txn.pop(txn_id, None)
            if not resources:
                return 0
            resource_map = self._resources
            for name in resources:
                state = resource_map.get(name)
                if state is not None:
                    state.holders.pop(txn_id, None)
                    if not state.holders and not state.waiters:
                        del self._resources[name]
            self._granted.notify_all()
            return len(resources)

    def holds(self, txn_id: int, resource: str,
              mode: LockMode | None = None) -> bool:
        with self._mutex:
            state = self._resources.get(resource)
            if state is None or txn_id not in state.holders:
                return False
            return mode is None or state.holders[txn_id] is mode

    def statistics(self) -> LockStatistics:
        with self._mutex:
            held = sum(len(s.holders) for s in self._resources.values())
            waiting = sum(len(s.waiters) for s in self._resources.values())
            return LockStatistics(
                locks_held=held,
                transactions_waiting=waiting,
                total_requests=self._total_requests,
                total_waits=self._total_waits,
                total_deadlocks=self._total_deadlocks,
                total_timeouts=self._total_timeouts,
            )

    # -- internals -----------------------------------------------------------

    # staticcheck: guarded-by(_granted)
    def _note_held(self, txn_id: int, resource: str) -> None:
        """Bookkeeping for a granted lock; caller holds ``_granted``."""
        held = self._held_by_txn.get(txn_id)
        if held is None:
            held = self._held_by_txn[txn_id] = \
                set()  # staticcheck: allocfree(first-lock-per-txn-only)
        held.add(resource)

    def _try_grant(self, state: _Resource, txn_id: int,
                   mode: LockMode) -> bool:
        held = state.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or held is mode:
            return True  # re-entrant
        # Allocation-free compatibility scan (no `others` dict: this
        # runs per acquire and per wakeup under _granted).
        holders = state.holders
        if mode is LockMode.SHARED:
            for other, other_mode in holders.items():
                if other != txn_id and other_mode is not LockMode.SHARED:
                    return False
        else:
            for other in holders:
                if other != txn_id:
                    return False
        state.holders[txn_id] = mode
        return True

    # staticcheck: coldpath(contended-wait-only)
    def _creates_deadlock(self, start_txn: int) -> bool:
        """Cycle check over the waits-for graph starting at ``start_txn``."""
        edges: dict[int, set[int]] = {}
        for state in self._resources.values():
            holders = set(state.holders)
            for waiter, mode in state.waiters:
                blockers = holders - {waiter}
                if mode is LockMode.SHARED:
                    blockers = {
                        t for t in blockers
                        if state.holders[t] is LockMode.EXCLUSIVE
                    }
                if blockers:
                    edges.setdefault(waiter, set()).update(blockers)
        visited: set[int] = set()
        stack = list(edges.get(start_txn, ()))
        while stack:
            node = stack.pop()
            if node == start_txn:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(edges.get(node, ()))
        return False


class LockGuard:
    """Context manager releasing a transaction's locks on exit."""

    def __init__(self, manager: LockManager, txn_id: int) -> None:
        self._manager = manager
        self._txn_id = txn_id

    def acquire(self, resource: str, mode: LockMode) -> None:
        self._manager.acquire(self._txn_id, resource, mode)

    def __enter__(self) -> "LockGuard":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._manager.release_all(self._txn_id)
