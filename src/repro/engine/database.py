"""One database: catalog + storage + statistics + triggers.

A :class:`Database` owns its simulated disk and buffer pool (like an
Ingres database location), coordinates secondary-index maintenance on
DML, collects optimizer statistics, serves the optimizer's catalog view
(including synthesized geometry for *virtual* indexes) and the
executor's storage catalog, and hosts registered *virtual tables* —
the IMA mechanism that exposes in-memory monitor data over plain SQL.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import (
    Column,
    DataType,
    IndexDef,
    StorageStructure,
    TableSchema,
)
from repro.catalog.statistics import (
    TableStatistics,
    collect_column_statistics,
)
from repro.clock import Clock, SystemClock
from repro.config import EngineConfig
from repro.errors import (
    CatalogError,
    StorageError,
    UnknownObjectError,
)
from repro.optimizer.interfaces import (
    IndexInfo,
    TableInfo,
    estimate_row_bytes,
    synthesize_index_info,
)
from repro.storage.btree import BTreeStorage
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager
from repro.storage.table_storage import TableStorage
from repro.engine.triggers import TriggerManager

VirtualTableProvider = Callable[[], list[tuple]]


class Database:
    """Catalog, storage and physical-design operations for one database."""

    def __init__(self, name: str, config: EngineConfig | None = None,
                 clock: Clock | None = None) -> None:
        self.name = name
        self.config = config or EngineConfig()
        self.clock = clock or SystemClock()
        self.disk = DiskManager(self.config.storage, self.clock)
        self.pool = BufferPool(self.disk, self.config.storage.buffer_pool_pages)
        self.catalog = Catalog()
        self.triggers = TriggerManager()
        self._storages: dict[str, TableStorage] = {}
        self._index_storages: dict[str, BTreeStorage] = {}
        self._virtual_providers: dict[str, VirtualTableProvider] = {}
        self.schema_version = 0
        """Bumped on every DDL/statistics change; plan caches key their
        entries on it so stale plans are recompiled."""

    # -- DDL --------------------------------------------------------------

    def create_table(self, schema: TableSchema,
                     structure: StorageStructure = StorageStructure.HEAP,
                     main_pages: int | None = None) -> TableEntry:
        """Create a base table with the given storage structure."""
        self.schema_version += 1
        entry = self.catalog.create_table(schema, structure)
        self._storages[schema.name.lower()] = TableStorage(
            schema, self.disk, self.pool, self.config.storage,
            structure=structure, main_pages=main_pages,
        )
        return entry

    def register_virtual_table(self, schema: TableSchema,
                               provider: VirtualTableProvider) -> TableEntry:
        """Register an in-memory (IMA-style) virtual table.

        The provider is called at scan time and must return the current
        rows; no storage or disk access is involved.
        """
        self.schema_version += 1
        entry = self.catalog.create_table(schema, is_virtual=True)
        self._virtual_providers[schema.name.lower()] = provider
        return entry

    def drop_table(self, name: str) -> None:
        self.schema_version += 1
        entry = self.catalog.table(name)
        for index in list(self.catalog.indexes_on(name, include_virtual=True)):
            self.drop_index(index.name)
        self.catalog.drop_table(name)
        if entry.is_virtual:
            self._virtual_providers.pop(name.lower(), None)
            return
        storage = self._storages.pop(name.lower())
        storage.drop()

    def create_index(self, definition: IndexDef) -> IndexDef:
        """Create a secondary index; real indexes are built immediately."""
        entry = self.catalog.table(definition.table_name)
        if entry.is_virtual and not definition.virtual:
            raise CatalogError(
                f"cannot create a physical index on virtual table "
                f"{definition.table_name!r}"
            )
        # Virtual (what-if) indexes never affect executable plans, so
        # they don't invalidate plan caches.
        if not definition.virtual:
            self.schema_version += 1
        self.catalog.create_index(definition)
        if definition.virtual:
            return definition
        index_schema = self._index_schema(definition, entry.schema)
        storage = BTreeStorage(
            index_schema,
            definition.column_names,
            self.disk,
            self.pool,
            unique=definition.unique,
            fill_factor=self.config.storage.heap_fill_factor,
        )
        base = self._storages[definition.table_name.lower()]
        try:
            storage.bulk_load(
                (rowid, self._index_entry(entry.schema, definition, rowid, row))
                for rowid, row in base.scan()
            )
        except StorageError:
            self.catalog.drop_index(definition.name)
            storage.drop()
            raise
        self._index_storages[definition.name.lower()] = storage
        return definition

    def drop_index(self, name: str) -> None:
        if not self.catalog.index(name).virtual:
            self.schema_version += 1
        self.catalog.drop_index(name)
        storage = self._index_storages.pop(name.lower(), None)
        if storage is not None:
            storage.drop()

    def modify_table(self, name: str, structure: StorageStructure,
                     main_pages: int | None = None) -> None:
        """MODIFY <table> TO <structure>: rebuild; indexes stay valid
        because rowids are preserved."""
        entry = self.catalog.table(name)
        if entry.is_virtual:
            raise CatalogError(f"cannot MODIFY virtual table {name!r}")
        storage = self._storages[name.lower()]
        storage.modify_to(structure, main_pages)
        entry.structure = structure
        self.schema_version += 1

    # -- DML (single-row operations used by the session layer) -----------------

    def insert_row(self, table_name: str, row: tuple) -> int:
        """Insert a row, maintain indexes, fire triggers; returns rowid."""
        entry = self.catalog.table(table_name)
        if entry.is_virtual:
            raise CatalogError(f"cannot insert into virtual table {table_name!r}")
        storage = self._storages[table_name.lower()]
        checked = entry.schema.check_row(row)
        self._check_unique_indexes(entry, checked, exclude_rowid=None)
        rowid = storage.insert(checked)
        maintained: list[BTreeStorage] = []
        try:
            for index in self.catalog.indexes_on(table_name):
                index_storage = self._index_storages[index.name.lower()]
                index_storage.insert(
                    rowid, self._index_entry(entry.schema, index, rowid,
                                             checked))
                maintained.append(index_storage)
        except StorageError:
            for index_storage in maintained:
                index_storage.delete(rowid)
            storage.delete(rowid)
            raise
        self.triggers.fire_on_insert(table_name, checked, self.clock.now())
        return rowid

    def delete_row(self, table_name: str, rowid: int) -> tuple:
        entry = self.catalog.table(table_name)
        storage = self._storages[table_name.lower()]
        row = storage.delete(rowid)
        for index in self.catalog.indexes_on(table_name):
            self._index_storages[index.name.lower()].delete(rowid)
        return row

    def update_row(self, table_name: str, rowid: int, row: tuple) -> tuple:
        """Update in place; returns the previous row."""
        entry = self.catalog.table(table_name)
        storage = self._storages[table_name.lower()]
        checked = entry.schema.check_row(row)
        old_row = storage.fetch(rowid)
        self._check_unique_indexes(entry, checked, exclude_rowid=rowid)
        storage.update(rowid, checked)
        for index in self.catalog.indexes_on(table_name):
            index_storage = self._index_storages[index.name.lower()]
            index_storage.update(
                rowid, self._index_entry(entry.schema, index, rowid, checked))
        return old_row

    def undo_insert(self, table_name: str, rowid: int) -> None:
        self.delete_row(table_name, rowid)

    def undo_delete(self, table_name: str, rowid: int, row: tuple) -> None:
        """Re-insert a deleted row under its original rowid."""
        entry = self.catalog.table(table_name)
        storage = self._storages[table_name.lower()]
        storage.insert_with_rowid(rowid, row)
        for index in self.catalog.indexes_on(table_name):
            self._index_storages[index.name.lower()].insert(
                rowid, self._index_entry(entry.schema, index, rowid, row))

    # -- statistics --------------------------------------------------------------

    def collect_statistics(self, table_name: str,
                           columns: Iterable[str] = (),
                           buckets: int = 20) -> TableStatistics:
        """Scan the table and build statistics (Ingres' optimizedb).

        With no explicit column list, all columns are analyzed.  Column
        statistics from earlier collections are kept unless re-analyzed.
        """
        entry = self.catalog.table(table_name)
        if entry.is_virtual:
            raise CatalogError(
                f"cannot collect statistics on virtual table {table_name!r}")
        storage = self._storages[table_name.lower()]
        schema = entry.schema
        wanted = tuple(columns) or schema.column_names
        for column in wanted:
            if not schema.has_column(column):
                raise UnknownObjectError(
                    f"table {table_name!r} has no column {column!r}")
        rows = [row for _rowid, row in storage.scan()]
        stats = TableStatistics(
            row_count=len(rows),
            page_count=storage.page_count,
            overflow_pages=storage.overflow_page_count,
            collected_at=self.clock.now(),
        )
        if entry.statistics is not None:
            stats.columns.update(entry.statistics.columns)
        for column in wanted:
            position = schema.column_index(column)
            stats.columns[column.lower()] = collect_column_statistics(
                column, (row[position] for row in rows), buckets)
        entry.statistics = stats
        storage.modifications_since_stats = 0
        self.schema_version += 1
        return stats

    # -- optimizer view (CatalogView protocol) ----------------------------------------

    def table_info(self, name: str) -> TableInfo:
        entry = self.catalog.table(name)
        if entry.is_virtual:
            rows = len(self._virtual_providers[name.lower()]())
            return TableInfo(
                name=entry.schema.name,
                schema=entry.schema,
                structure=StorageStructure.HEAP,
                row_count=rows,
                page_count=max(1, rows // 50),
                overflow_pages=0,
                avg_row_bytes=estimate_row_bytes(entry.schema),
            )
        storage = self._storages[name.lower()]
        stats = entry.statistics
        if stats is not None:
            stats.rows_modified_since = storage.modifications_since_stats
        btree_height = 0
        btree_leaf_pages = 0
        hash_chain_pages = 0.0
        key_columns: tuple[str, ...] = ()
        if entry.structure is StorageStructure.BTREE:
            btree_height = storage.btree.height
            btree_leaf_pages = storage.btree.leaf_page_count
            key_columns = storage.key_columns
        elif entry.structure is StorageStructure.HASH:
            hash_chain_pages = storage.hash.average_chain_length
            key_columns = storage.key_columns
        return TableInfo(
            name=entry.schema.name,
            schema=entry.schema,
            structure=entry.structure,
            row_count=storage.row_count,
            page_count=storage.page_count,
            overflow_pages=storage.overflow_page_count,
            btree_height=btree_height,
            btree_leaf_pages=btree_leaf_pages,
            key_columns=key_columns,
            hash_chain_pages=hash_chain_pages,
            statistics=stats,
            avg_row_bytes=estimate_row_bytes(entry.schema),
        )

    def indexes_on(self, table_name: str,
                   include_virtual: bool = False) -> tuple[IndexInfo, ...]:
        result: list[IndexInfo] = []
        definitions = self.catalog.indexes_on(table_name,
                                              include_virtual=include_virtual)
        table: TableInfo | None = None
        for definition in definitions:
            if definition.virtual:
                if table is None:
                    table = self.table_info(table_name)
                result.append(synthesize_index_info(
                    definition, table, self.config.storage.page_size))
                continue
            storage = self._index_storages[definition.name.lower()]
            result.append(IndexInfo(
                definition=definition,
                height=storage.height,
                leaf_pages=storage.leaf_page_count,
                entry_count=storage.row_count,
            ))
        return tuple(result)

    # -- executor storage catalog (StorageCatalog protocol) ------------------------------

    def storage_for(self, table_name: str) -> TableStorage:
        try:
            return self._storages[table_name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"table {table_name!r} does not exist") from None

    def index_storage_for(self, index_name: str) -> BTreeStorage:
        try:
            return self._index_storages[index_name.lower()]
        except KeyError:
            raise UnknownObjectError(
                f"index {index_name!r} does not exist") from None

    def virtual_rows(self, table_name: str) -> list[tuple]:
        try:
            return self._virtual_providers[table_name.lower()]()
        except KeyError:
            raise UnknownObjectError(
                f"virtual table {table_name!r} does not exist") from None

    def is_virtual_table(self, table_name: str) -> bool:
        return table_name.lower() in self._virtual_providers

    # -- size accounting ---------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """On-disk footprint of this database (tables + indexes)."""
        return self.disk.total_bytes

    def table_bytes(self, table_name: str) -> int:
        return self.storage_for(table_name).data_bytes

    def index_bytes(self, index_name: str) -> int:
        storage = self.index_storage_for(index_name)
        return storage.page_count * self.disk.page_size

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _index_schema(definition: IndexDef,
                      table_schema: TableSchema) -> TableSchema:
        """Schema of the index relation: key columns + base rowid."""
        columns = tuple(
            Column(c.name, c.data_type, c.max_length, nullable=True)
            for c in (table_schema.column(name)
                      for name in definition.column_names)
        ) + (Column("tidp", DataType.INT, nullable=False),)
        return TableSchema(definition.name, columns)

    @staticmethod
    def _index_entry(table_schema: TableSchema, definition: IndexDef,
                     rowid: int, row: tuple) -> tuple:
        positions = tuple(table_schema.column_index(c)
                          for c in definition.column_names)
        return tuple(row[p] for p in positions) + (rowid,)

    def _check_unique_indexes(self, entry: TableEntry, row: tuple,
                              exclude_rowid: int | None) -> None:
        """Pre-check unique secondary indexes so a violation does not
        leave a half-maintained row behind."""
        for index in self.catalog.indexes_on(entry.schema.name):
            if not index.unique:
                continue
            storage = self._index_storages[index.name.lower()]
            key = self._index_entry(entry.schema, index, 0, row)[:-1]
            for rowid, _entry_row in storage.seek(key):
                if rowid != exclude_rowid:
                    raise StorageError(
                        f"duplicate key {key!r} violates unique index "
                        f"{index.name!r}"
                    )
