"""Row-insert triggers and alerts.

The paper's daemon appends monitor data to the workload database and
relies on ordinary triggers/procedures there for active alerting
("inform the DBA when the maximum number of users is reached").  This
module provides that substrate: a trigger watches one table, evaluates
its condition over each inserted row, and emits an :class:`Alert`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.catalog.schema import TableSchema
from repro.errors import DuplicateObjectError, UnknownObjectError
from repro.execution.evaluator import compile_predicate
from repro.sql import ast_nodes as ast


@dataclass(frozen=True)
class Alert:
    """One fired alert."""

    trigger_name: str
    table_name: str
    message: str
    row: tuple
    fired_at: float


@dataclass
class TriggerDef:
    name: str
    table_name: str
    condition: ast.Expression
    message: str
    predicate: Callable[[tuple], bool]


class TriggerManager:
    """Registry and dispatcher for per-table insert triggers."""

    def __init__(self) -> None:
        self._triggers: dict[str, TriggerDef] = {}
        self._by_table: dict[str, list[TriggerDef]] = {}
        self.alerts: list[Alert] = []
        self.listeners: list[Callable[[Alert], None]] = []

    def create(self, name: str, schema: TableSchema,
               condition: ast.Expression, message: str) -> TriggerDef:
        key = name.lower()
        if key in self._triggers:
            raise DuplicateObjectError(f"trigger {name!r} already exists")
        scope = tuple((schema.name, c) for c in schema.column_names)
        trigger = TriggerDef(
            name=key,
            table_name=schema.name.lower(),
            condition=condition,
            message=message,
            predicate=compile_predicate(condition, scope),
        )
        self._triggers[key] = trigger
        self._by_table.setdefault(trigger.table_name, []).append(trigger)
        return trigger

    def drop(self, name: str) -> None:
        key = name.lower()
        trigger = self._triggers.pop(key, None)
        if trigger is None:
            raise UnknownObjectError(f"trigger {name!r} does not exist")
        self._by_table[trigger.table_name] = [
            t for t in self._by_table.get(trigger.table_name, [])
            if t.name != key
        ]

    def triggers_on(self, table_name: str) -> tuple[TriggerDef, ...]:
        return tuple(self._by_table.get(table_name.lower(), ()))

    def fire_on_insert(self, table_name: str, row: tuple,
                       now: float) -> list[Alert]:
        """Evaluate the table's triggers against an inserted row."""
        fired: list[Alert] = []
        for trigger in self._by_table.get(table_name.lower(), ()):
            if trigger.predicate(row):
                alert = Alert(
                    trigger_name=trigger.name,
                    table_name=trigger.table_name,
                    message=trigger.message,
                    row=row,
                    fired_at=now,
                )
                fired.append(alert)
                self.alerts.append(alert)
                for listener in self.listeners:
                    listener(alert)
        return fired
