"""Sessions: the statement pipeline with integrated sensor call sites.

A session runs ``parse -> optimize -> execute`` for queries, or the
corresponding DML/DDL handlers, acquiring table locks along the way.
The monitoring sensors are invoked exactly where figure 2 of the paper
places them; with :class:`~repro.core.sensors.NullSensors` plugged in,
the calls dispatch to empty methods.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro import faultsim
from repro.catalog.schema import (
    Column,
    DataType,
    IndexDef,
    StorageStructure,
    TableSchema,
)
from repro.core.sensors import Sensors
from repro.errors import ExecutionError, ReproError, SqlError
from repro.execution.evaluator import compile_expression, compile_predicate
from repro.execution.executor import ExecutionMetrics, Executor, QueryResult
from repro.engine.locks import LockMode
from repro.engine.transactions import Transaction
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.predicates import BindingResolver
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database
    from repro.engine.engine import EngineInstance


@dataclass
class DmlResult:
    """Result of a non-SELECT statement."""

    kind: str
    rowcount: int = 0
    detail: str = ""


_TYPE_MAP = {
    "int": DataType.INT,
    "integer": DataType.INT,
    "bigint": DataType.INT,
    "float": DataType.FLOAT,
    "double": DataType.FLOAT,
    "real": DataType.FLOAT,
    "varchar": DataType.VARCHAR,
    "text": DataType.TEXT,
    "bool": DataType.BOOL,
    "boolean": DataType.BOOL,
}

_STRUCTURES = {
    "heap": StorageStructure.HEAP,
    "btree": StorageStructure.BTREE,
    "hash": StorageStructure.HASH,
}


class Session:
    """One connection to a database of an engine instance."""

    def __init__(self, engine: "EngineInstance", database: "Database",
                 session_id: int) -> None:
        self.engine = engine
        self.database = database
        self.session_id = session_id
        # Bound once at connect: routes every sensor fire through a
        # session-bound object, so per-session state (the session id in
        # statement contexts, the monitor shard this session hashes to)
        # is resolved here instead of per statement.  The annotation is
        # type evidence for the static thread-role model: every thread
        # that executes statements (the storage daemon's poll sessions
        # included) reaches the sensor overrides through this field.
        self.sensors: Sensors = engine.sensors.for_session(session_id)
        self.optimizer = Optimizer(database, engine.config)
        self.executor = Executor(database, database.pool, database.disk)
        self._explicit_txn: Transaction | None = None
        self.closed = False
        # Plan cache: statement text -> (schema version, AST, plan).
        # This is the engine-side caching that makes repeated trivial
        # statements cheap (the effect the paper's 1m test exposes).
        self._plan_cache: "OrderedDict[str, tuple[int, ast.SelectStatement, Any]]" = \
            OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._explicit_txn is not None and self._explicit_txn.is_active:
            self.rollback()
        if not self.closed:
            self.closed = True
            self.engine.on_session_closed(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- transaction plumbing ----------------------------------------------------

    def begin(self) -> None:
        if self._explicit_txn is not None and self._explicit_txn.is_active:
            raise ReproError("a transaction is already active")
        self._explicit_txn = Transaction()

    def commit(self) -> None:
        if self._explicit_txn is None or not self._explicit_txn.is_active:
            raise ReproError("no active transaction")
        self._explicit_txn.commit()
        self.engine.lock_manager.release_all(self._explicit_txn.txn_id)
        self._explicit_txn = None

    def rollback(self) -> None:
        if self._explicit_txn is None or not self._explicit_txn.is_active:
            raise ReproError("no active transaction")
        self._explicit_txn.rollback()
        self.engine.lock_manager.release_all(self._explicit_txn.txn_id)
        self._explicit_txn = None

    def _current_txn(self) -> tuple[Transaction, bool]:
        """Return (transaction, is_autocommit)."""
        if self._explicit_txn is not None and self._explicit_txn.is_active:
            return self._explicit_txn, False
        return Transaction(), True

    # -- the statement pipeline -----------------------------------------------------

    def execute(self, text: str) -> QueryResult | DmlResult:
        """Run one SQL statement through the monitored pipeline."""
        sensors = self.sensors
        clock = self.engine.clock
        started = clock.monotonic()
        ctx = sensors.statement_start(text, self.session_id)
        try:
            # Fault seam inside the monitored region: injected failures
            # and slow queries are observed by the sensors like real
            # ones (statement_error fires, wallclock includes latency).
            faultsim.fire("session.execute", error=ExecutionError,
                          clock=clock)
            cached = self._cached_plan(text)
            if cached is not None:
                statement, optimized = cached
                sensors.parse_complete(ctx, "select",
                                       _statement_tables(statement))
                result = self._execute_select(statement, ctx,
                                              cached_plan=optimized)
            else:
                statement = parse_statement(text)
                kind = type(statement).__name__.removesuffix(
                    "Statement").lower()
                sensors.parse_complete(ctx, kind,
                                       _statement_tables(statement))
                result = self._dispatch(statement, ctx, text)
        except ReproError as error:
            sensors.statement_error(ctx, str(error))
            raise
        wallclock = clock.monotonic() - started
        self._finish(ctx, result, wallclock)
        return result

    def explain(self, text: str) -> str:
        """Return the optimizer's plan for a SELECT without running it."""
        statement = parse_statement(text)
        if not isinstance(statement, ast.SelectStatement):
            raise ExecutionError("EXPLAIN supports only SELECT statements")
        return self.optimizer.optimize_select(statement).explain()

    def _finish(self, ctx: Any, result: QueryResult | DmlResult,
                wallclock: float) -> None:
        sensors = self.sensors
        if isinstance(result, QueryResult):
            metrics = result.metrics
        else:
            metrics = ExecutionMetrics()
        cost_model = self.optimizer.cost_model
        actual = cost_model.actual_cost(metrics.logical_reads,
                                        metrics.tuples_processed)
        sensors.execute_complete(
            ctx,
            actual_io=actual.io,
            actual_cpu=actual.cpu,
            logical_reads=metrics.logical_reads,
            physical_reads=metrics.physical_reads,
            tuples_processed=metrics.tuples_processed,
            rows_returned=metrics.rows_returned,
            execute_time_s=wallclock,
            wallclock_s=wallclock,
        )
        sensors.sample_statistics(self.engine.system_statistics)

    # -- dispatch ---------------------------------------------------------------------

    # -- plan cache -----------------------------------------------------------

    def _cached_plan(self, text: str):
        """Return (statement, optimization) for a cached, still-valid
        SELECT plan, or None."""
        if self.engine.config.plan_cache_size <= 0:
            return None
        entry = self._plan_cache.get(text)
        if entry is None:
            return None
        version, statement, optimized = entry
        if version != self.database.schema_version:
            del self._plan_cache[text]
            return None
        self._plan_cache.move_to_end(text)
        self.plan_cache_hits += 1
        return statement, optimized

    def _store_plan(self, text: str | None, statement: ast.SelectStatement,
                    optimized: Any) -> None:
        capacity = self.engine.config.plan_cache_size
        if capacity <= 0 or text is None:
            return
        self.plan_cache_misses += 1
        self._plan_cache[text] = (self.database.schema_version, statement,
                                  optimized)
        self._plan_cache.move_to_end(text)
        while len(self._plan_cache) > capacity:
            self._plan_cache.popitem(last=False)

    def _dispatch(self, statement: ast.Statement, ctx: Any,
                  text: str | None = None) -> QueryResult | DmlResult:
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement, ctx, text=text)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.DropTableStatement):
            self.database.drop_table(statement.table_name)
            return DmlResult("drop table", detail=statement.table_name)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropIndexStatement):
            self.database.drop_index(statement.index_name)
            return DmlResult("drop index", detail=statement.index_name)
        if isinstance(statement, ast.ModifyStatement):
            return self._execute_modify(statement)
        if isinstance(statement, ast.CreateStatisticsStatement):
            stats = self.database.collect_statistics(
                statement.table_name, statement.columns)
            return DmlResult("create statistics", rowcount=stats.row_count,
                             detail=statement.table_name)
        if isinstance(statement, ast.CreateTriggerStatement):
            schema = self.database.catalog.table(statement.table_name).schema
            self.database.triggers.create(
                statement.trigger_name, schema, statement.condition,
                statement.message)
            return DmlResult("create trigger", detail=statement.trigger_name)
        if isinstance(statement, ast.DropTriggerStatement):
            self.database.triggers.drop(statement.trigger_name)
            return DmlResult("drop trigger", detail=statement.trigger_name)
        if isinstance(statement, ast.ExplainStatement):
            optimized = self.optimizer.optimize_select(statement.statement)
            lines = optimized.explain().splitlines()
            from repro.execution.executor import ExecutionMetrics
            return QueryResult(columns=("plan",),
                               rows=[(line,) for line in lines],
                               metrics=ExecutionMetrics())
        if isinstance(statement, ast.BeginStatement):
            self.begin()
            return DmlResult("begin")
        if isinstance(statement, ast.CommitStatement):
            self.commit()
            return DmlResult("commit")
        if isinstance(statement, ast.RollbackStatement):
            self.rollback()
            return DmlResult("rollback")
        raise ExecutionError(f"unsupported statement {statement!r}")

    # -- SELECT -----------------------------------------------------------------------

    def _execute_select(self, statement: ast.SelectStatement, ctx: Any,
                        text: str | None = None,
                        cached_plan: Any = None) -> QueryResult:
        clock = self.engine.clock
        sensors = self.sensors
        txn, autocommit = self._current_txn()
        try:
            if cached_plan is None and _has_subqueries(statement):
                statement = self._materialize_subqueries(statement, txn)
                text = None  # data-dependent: never plan-cache
            for table_name in _statement_tables(statement):
                if not self.database.is_virtual_table(table_name):
                    self.engine.lock_manager.acquire(
                        txn.txn_id, table_name.lower(), LockMode.SHARED)
            if cached_plan is not None:
                optimized = cached_plan
                optimize_time = 0.0
            else:
                optimize_started = clock.monotonic()
                optimized = self.optimizer.optimize_select(statement)
                optimize_time = clock.monotonic() - optimize_started
                self._store_plan(text, statement, optimized)
            sensors.optimize_complete(
                ctx,
                estimated_io=optimized.estimated_cost.io,
                estimated_cpu=optimized.estimated_cost.cpu,
                used_indexes=optimized.used_indexes,
                available_indexes=optimized.available_indexes,
                referenced_columns=optimized.referenced_columns,
                optimize_time_s=optimize_time,
                plan_supplier=optimized.explain,
            )
            return self.executor.execute(optimized.plan,
                                         optimized.output_names)
        finally:
            if autocommit:
                self.engine.lock_manager.release_all(txn.txn_id)

    # -- subqueries ---------------------------------------------------------------------

    def _materialize_subqueries(self, statement: ast.SelectStatement,
                                txn: Transaction) -> ast.SelectStatement:
        """Evaluate every (uncorrelated) subquery and splice the results
        in as literals; correlated references raise OptimizerError."""

        def rewrite(expr: ast.Expression | None) -> ast.Expression | None:
            return self._rewrite_subquery_expression(expr, txn)

        return ast.SelectStatement(
            select_items=tuple(
                ast.SelectItem(rewrite(i.expression), i.alias)
                for i in statement.select_items),
            from_table=statement.from_table,
            joins=tuple(
                ast.Join(j.right, rewrite(j.condition), j.kind)
                for j in statement.joins),
            where=rewrite(statement.where),
            group_by=tuple(rewrite(e) for e in statement.group_by),
            having=rewrite(statement.having),
            order_by=tuple(
                ast.OrderItem(rewrite(o.expression), o.descending)
                for o in statement.order_by),
            limit=statement.limit,
            offset=statement.offset,
            distinct=statement.distinct,
        )

    def _rewrite_subquery_expression(self, expr: ast.Expression | None,
                                     txn: Transaction,
                                     ) -> ast.Expression | None:
        """Replace subqueries with their evaluated results.

        Explicit recursion (not :func:`ast.transform_expression`) because
        a Subquery directly under IN must expand to a *list*, which only
        the IN handler can do — a bottom-up visitor would consume it as
        a scalar first.
        """
        if expr is None:
            return None
        rewrite = lambda e: self._rewrite_subquery_expression(e, txn)  # noqa: E731
        if isinstance(expr, ast.Subquery):
            return self._scalar_subquery(expr, txn)
        if isinstance(expr, ast.InList):
            items: list[ast.Expression] = []
            for item in expr.items:
                if isinstance(item, ast.Subquery):
                    items.extend(self._list_subquery(item, txn))
                else:
                    items.append(rewrite(item))
            if not items:  # IN against an empty result matches nothing
                return (ast.Literal(True) if expr.negated
                        else ast.Literal(False))
            return ast.InList(rewrite(expr.operand), tuple(items),
                              expr.negated)
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, rewrite(expr.left),
                                rewrite(expr.right))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(rewrite(expr.operand), expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(rewrite(expr.operand), rewrite(expr.low),
                               rewrite(expr.high), expr.negated)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(
                expr.name, tuple(rewrite(a) for a in expr.args),
                expr.distinct)
        return expr

    def _run_subquery(self, subquery: ast.Subquery,
                      txn: Transaction) -> QueryResult:
        inner = subquery.statement
        if _has_subqueries(inner):
            inner = self._materialize_subqueries(inner, txn)
        for table_name in _statement_tables(inner):
            if not self.database.is_virtual_table(table_name):
                self.engine.lock_manager.acquire(
                    txn.txn_id, table_name.lower(), LockMode.SHARED)
        optimized = self.optimizer.optimize_select(inner)
        return self.executor.execute(optimized.plan, optimized.output_names)

    def _scalar_subquery(self, subquery: ast.Subquery,
                         txn: Transaction) -> ast.Literal:
        result = self._run_subquery(subquery, txn)
        if len(result.columns) != 1:
            raise ExecutionError(
                f"scalar subquery must return one column, got "
                f"{len(result.columns)}")
        if len(result.rows) > 1:
            raise ExecutionError(
                f"scalar subquery returned {len(result.rows)} rows")
        value = result.rows[0][0] if result.rows else None
        return ast.Literal(value)

    def _list_subquery(self, subquery: ast.Subquery,
                       txn: Transaction) -> list[ast.Literal]:
        result = self._run_subquery(subquery, txn)
        if len(result.columns) != 1:
            raise ExecutionError(
                f"IN subquery must return one column, got "
                f"{len(result.columns)}")
        return [ast.Literal(row[0]) for row in result.rows]

    # -- DML ---------------------------------------------------------------------------

    def _execute_insert(self, statement: ast.InsertStatement) -> DmlResult:
        entry = self.database.catalog.table(statement.table_name)
        schema = entry.schema
        txn, autocommit = self._current_txn()
        try:
            self.engine.lock_manager.acquire(
                txn.txn_id, statement.table_name.lower(), LockMode.EXCLUSIVE)
            if statement.columns:
                positions = [schema.column_index(c)
                             for c in statement.columns]
            else:
                positions = list(range(len(schema.columns)))
            inserted = 0
            for value_row in statement.rows:
                if len(value_row) != len(positions):
                    raise ExecutionError(
                        f"INSERT expects {len(positions)} values, "
                        f"got {len(value_row)}"
                    )
                row: list[Any] = [None] * len(schema.columns)
                for position, expr in zip(positions, value_row):
                    row[position] = compile_expression(expr, ())(())
                rowid = self.database.insert_row(statement.table_name,
                                                 tuple(row))
                table_name = statement.table_name
                txn.record_undo(
                    lambda t=table_name, r=rowid:
                    self.database.undo_insert(t, r))
                inserted += 1
            if autocommit:
                txn.commit()
            return DmlResult("insert", rowcount=inserted)
        except ReproError:
            if autocommit:
                txn.rollback()
            raise
        finally:
            if autocommit:
                self.engine.lock_manager.release_all(txn.txn_id)

    def _match_rows(self, table_name: str,
                    where: ast.Expression | None) -> list[tuple[int, tuple]]:
        """Scan a table and return (rowid, row) pairs matching ``where``."""
        schema = self.database.catalog.table(table_name).schema
        resolver = BindingResolver({
            table_name.lower(): schema.column_names
        })
        scope = tuple((table_name.lower(), c) for c in schema.column_names)
        predicate = compile_predicate(
            resolver.qualify(where) if where is not None else None, scope)
        storage = self.database.storage_for(table_name)
        return [(rowid, row) for rowid, row in storage.scan()
                if predicate(row)]

    def _execute_update(self, statement: ast.UpdateStatement) -> DmlResult:
        entry = self.database.catalog.table(statement.table_name)
        schema = entry.schema
        txn, autocommit = self._current_txn()
        try:
            self.engine.lock_manager.acquire(
                txn.txn_id, statement.table_name.lower(), LockMode.EXCLUSIVE)
            resolver = BindingResolver({
                statement.table_name.lower(): schema.column_names
            })
            scope = tuple((statement.table_name.lower(), c)
                          for c in schema.column_names)
            assignments = [
                (schema.column_index(column),
                 compile_expression(resolver.qualify(expr), scope))
                for column, expr in statement.assignments
            ]
            where = statement.where
            if where is not None and ast.contains_subquery(where):
                where = self._rewrite_subquery_expression(where, txn)
            updated = 0
            for rowid, row in self._match_rows(statement.table_name,
                                               where):
                new_row = list(row)
                for position, getter in assignments:
                    new_row[position] = getter(row)
                old = self.database.update_row(statement.table_name, rowid,
                                               tuple(new_row))
                table_name = statement.table_name
                txn.record_undo(
                    lambda t=table_name, r=rowid, o=old:
                    self.database.update_row(t, r, o))
                updated += 1
            if autocommit:
                txn.commit()
            return DmlResult("update", rowcount=updated)
        except ReproError:
            if autocommit:
                txn.rollback()
            raise
        finally:
            if autocommit:
                self.engine.lock_manager.release_all(txn.txn_id)

    def _execute_delete(self, statement: ast.DeleteStatement) -> DmlResult:
        txn, autocommit = self._current_txn()
        try:
            self.engine.lock_manager.acquire(
                txn.txn_id, statement.table_name.lower(), LockMode.EXCLUSIVE)
            where = statement.where
            if where is not None and ast.contains_subquery(where):
                where = self._rewrite_subquery_expression(where, txn)
            deleted = 0
            for rowid, row in self._match_rows(statement.table_name,
                                               where):
                self.database.delete_row(statement.table_name, rowid)
                table_name = statement.table_name
                txn.record_undo(
                    lambda t=table_name, r=rowid, o=row:
                    self.database.undo_delete(t, r, o))
                deleted += 1
            if autocommit:
                txn.commit()
            return DmlResult("delete", rowcount=deleted)
        except ReproError:
            if autocommit:
                txn.rollback()
            raise
        finally:
            if autocommit:
                self.engine.lock_manager.release_all(txn.txn_id)

    # -- DDL ---------------------------------------------------------------------------

    def _execute_create_table(self,
                              statement: ast.CreateTableStatement) -> DmlResult:
        columns = []
        for definition in statement.columns:
            data_type = _TYPE_MAP.get(definition.type_name)
            if data_type is None:
                raise SqlError(f"unknown type {definition.type_name!r}")
            nullable = definition.nullable \
                and definition.name not in statement.primary_key
            columns.append(Column(
                definition.name, data_type,
                max_length=definition.length
                or (255 if data_type is DataType.VARCHAR else 0),
                nullable=nullable,
            ))
        schema = TableSchema(statement.table_name, tuple(columns),
                             statement.primary_key)
        structure = StorageStructure.HEAP
        if statement.structure is not None:
            structure = _parse_structure(statement.structure)
        self.database.create_table(schema, structure, statement.main_pages)
        return DmlResult("create table", detail=statement.table_name)

    def _execute_create_index(self,
                              statement: ast.CreateIndexStatement) -> DmlResult:
        definition = IndexDef(
            name=statement.index_name,
            table_name=statement.table_name,
            column_names=statement.columns,
            unique=statement.unique,
            virtual=statement.virtual,
        )
        self.database.create_index(definition)
        kind = "create virtual index" if statement.virtual else "create index"
        return DmlResult(kind, detail=statement.index_name)

    def _execute_modify(self, statement: ast.ModifyStatement) -> DmlResult:
        structure = _parse_structure(statement.structure)
        txn, autocommit = self._current_txn()
        try:
            self.engine.lock_manager.acquire(
                txn.txn_id, statement.table_name.lower(), LockMode.EXCLUSIVE)
            self.database.modify_table(statement.table_name, structure,
                                       statement.main_pages)
            return DmlResult("modify", detail=(
                f"{statement.table_name} to {structure.value}"))
        finally:
            if autocommit:
                self.engine.lock_manager.release_all(txn.txn_id)


def _has_subqueries(statement: ast.SelectStatement) -> bool:
    sources: list[ast.Expression] = [i.expression
                                     for i in statement.select_items]
    sources += [j.condition for j in statement.joins
                if j.condition is not None]
    if statement.where is not None:
        sources.append(statement.where)
    sources.extend(statement.group_by)
    if statement.having is not None:
        sources.append(statement.having)
    sources.extend(o.expression for o in statement.order_by)
    return any(ast.contains_subquery(source) for source in sources)


def _parse_structure(name: str) -> StorageStructure:
    structure = _STRUCTURES.get(name.lower())
    if structure is None:
        raise SqlError(f"unknown storage structure {name!r}")
    return structure


def _statement_tables(statement: ast.Statement) -> tuple[str, ...]:
    """Base table names a statement touches (for locks and sensors)."""
    if isinstance(statement, ast.SelectStatement):
        names = []
        if statement.from_table is not None:
            names.append(statement.from_table.table_name)
        names.extend(j.right.table_name for j in statement.joins)
        return tuple(dict.fromkeys(names))
    for attribute in ("table_name",):
        name = getattr(statement, attribute, None)
        if isinstance(name, str):
            return (name,)
    return ()
