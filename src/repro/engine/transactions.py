"""Transactions: lock scope plus an in-memory undo log.

The engine runs in autocommit by default; BEGIN/COMMIT/ROLLBACK give a
session explicit transaction scope.  Rollback replays an undo log of
inverse operations — rowids are stable across structures, so undoing a
delete re-inserts under the original rowid.
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Callable

from repro.errors import TransactionError


class TransactionState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


_txn_ids = itertools.count(1)
_txn_ids_lock = threading.Lock()


def next_transaction_id() -> int:
    with _txn_ids_lock:
        return next(_txn_ids)


class Transaction:
    """One transaction: identity, state and undo log."""

    def __init__(self) -> None:
        self.txn_id = next_transaction_id()
        self.state = TransactionState.ACTIVE
        self._undo: list[Callable[[], None]] = []

    def record_undo(self, action: Callable[[], None]) -> None:
        """Register the inverse of an applied change."""
        self._require_active()
        self._undo.append(action)

    def commit(self) -> None:
        self._require_active()
        self._undo.clear()
        self.state = TransactionState.COMMITTED

    def rollback(self) -> None:
        self._require_active()
        while self._undo:
            self._undo.pop()()
        self.state = TransactionState.ABORTED

    @property
    def is_active(self) -> bool:
        return self.state is TransactionState.ACTIVE

    @property
    def pending_changes(self) -> int:
        return len(self._undo)

    def _require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )
