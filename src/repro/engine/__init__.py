"""The DBMS shell: databases, sessions, locking and transactions.

This package plays the role Ingres plays in the paper: the host system
whose parse → optimize → execute pipeline carries the integrated
monitoring sensors.  An :class:`~repro.engine.engine.EngineInstance` is
"one Ingres installation"; the three experimental setups (Original /
Monitoring / Daemon) differ only in which sensor object is plugged in
and whether a storage daemon is attached.
"""

from repro.engine.engine import EngineInstance
from repro.engine.database import Database
from repro.engine.session import Session
from repro.engine.locks import LockManager, LockMode

__all__ = ["EngineInstance", "Database", "Session", "LockManager", "LockMode"]
