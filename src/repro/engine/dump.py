"""Logical database dump and restore (Ingres' unloaddb/copydb).

``dump_database`` serializes a database — schemas, storage structures,
rows (with their rowids), secondary indexes and collected statistics —
to a single JSON file; ``load_database`` rebuilds an equivalent database
from it.  This is a *logical* copy: pages are laid out fresh on load
(so a restore also compacts heap holes, exactly like Ingres' copydb).

Limitations: virtual tables (IMA) and virtual indexes are registrations
against live in-memory state, so they are skipped with a note in the
dump manifest; re-register them after loading.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.catalog.schema import (
    Column,
    DataType,
    IndexDef,
    StorageStructure,
    TableSchema,
)
from repro.catalog.statistics import (
    ColumnStatistics,
    Histogram,
    TableStatistics,
)
from repro.clock import Clock
from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import StorageError

DUMP_FORMAT_VERSION = 1


def dump_database(database: Database, path: str | pathlib.Path) -> int:
    """Write a logical dump of ``database`` to ``path``.

    Returns the number of rows dumped.  Dirty pages are flushed first so
    the dump reflects a consistent on-disk state.
    """
    database.pool.flush_all()
    tables: list[dict[str, Any]] = []
    skipped_virtual: list[str] = []
    total_rows = 0
    for entry in database.catalog.tables():
        if entry.is_virtual:
            skipped_virtual.append(entry.schema.name)
            continue
        storage = database.storage_for(entry.schema.name)
        rows = [[rowid, list(row)] for rowid, row in storage.scan()]
        total_rows += len(rows)
        tables.append({
            "schema": _schema_to_dict(entry.schema),
            "structure": entry.structure.value,
            "main_pages": getattr(storage, "_main_pages", 8),
            "statistics": (_statistics_to_dict(entry.statistics)
                           if entry.statistics is not None else None),
            "rows": rows,
        })
    indexes = [
        {
            "name": index.name,
            "table": index.table_name,
            "columns": list(index.column_names),
            "unique": index.unique,
        }
        for index in database.catalog.all_indexes()
        if not index.virtual
    ]
    document = {
        "format_version": DUMP_FORMAT_VERSION,
        "database": database.name,
        "tables": tables,
        "indexes": indexes,
        "skipped_virtual_tables": skipped_virtual,
    }
    path = pathlib.Path(path)
    path.write_text(json.dumps(document))
    return total_rows


def load_database(path: str | pathlib.Path,
                  config: EngineConfig | None = None,
                  clock: Clock | None = None,
                  name: str | None = None) -> Database:
    """Rebuild a database from a dump produced by :func:`dump_database`."""
    document = json.loads(pathlib.Path(path).read_text())
    version = document.get("format_version")
    if version != DUMP_FORMAT_VERSION:
        raise StorageError(
            f"unsupported dump format version {version!r} "
            f"(expected {DUMP_FORMAT_VERSION})")
    database = Database(name or document["database"], config, clock)
    for table in document["tables"]:
        schema = _schema_from_dict(table["schema"])
        structure = StorageStructure(table["structure"])
        database.create_table(schema, structure,
                              main_pages=table.get("main_pages"))
        storage = database.storage_for(schema.name)
        for rowid, row in table["rows"]:
            storage.insert_with_rowid(rowid, tuple(row))
        if table.get("statistics") is not None:
            entry = database.catalog.table(schema.name)
            entry.statistics = _statistics_from_dict(table["statistics"])
            storage.modifications_since_stats = 0
    for index in document["indexes"]:
        database.create_index(IndexDef(
            name=index["name"],
            table_name=index["table"],
            column_names=tuple(index["columns"]),
            unique=index["unique"],
        ))
    database.pool.flush_all()
    return database


# -- serialization helpers ---------------------------------------------------


def _schema_to_dict(schema: TableSchema) -> dict[str, Any]:
    return {
        "name": schema.name,
        "primary_key": list(schema.primary_key),
        "columns": [
            {
                "name": column.name,
                "type": column.data_type.value,
                "max_length": column.max_length,
                "nullable": column.nullable,
            }
            for column in schema.columns
        ],
    }


def _schema_from_dict(data: dict[str, Any]) -> TableSchema:
    return TableSchema(
        data["name"],
        tuple(
            Column(c["name"], DataType(c["type"]), c["max_length"],
                   c["nullable"])
            for c in data["columns"]
        ),
        tuple(data["primary_key"]),
    )


def _statistics_to_dict(stats: TableStatistics) -> dict[str, Any]:
    return {
        "row_count": stats.row_count,
        "page_count": stats.page_count,
        "overflow_pages": stats.overflow_pages,
        "collected_at": stats.collected_at,
        "columns": {
            name: {
                "n_distinct": column.n_distinct,
                "null_fraction": column.null_fraction,
                "min": column.min_value,
                "max": column.max_value,
                "histogram": (
                    {
                        "boundaries": list(column.histogram.boundaries),
                        "rows_per_bucket": column.histogram.rows_per_bucket,
                        "distinct_per_bucket":
                            list(column.histogram.distinct_per_bucket),
                    }
                    if column.histogram is not None else None
                ),
            }
            for name, column in stats.columns.items()
        },
    }


def _statistics_from_dict(data: dict[str, Any]) -> TableStatistics:
    stats = TableStatistics(
        row_count=data["row_count"],
        page_count=data["page_count"],
        overflow_pages=data["overflow_pages"],
        collected_at=data["collected_at"],
    )
    for name, column in data["columns"].items():
        histogram = None
        if column["histogram"] is not None:
            histogram = Histogram(
                boundaries=tuple(column["histogram"]["boundaries"]),
                rows_per_bucket=column["histogram"]["rows_per_bucket"],
                distinct_per_bucket=tuple(
                    column["histogram"]["distinct_per_bucket"]),
            )
        stats.columns[name] = ColumnStatistics(
            column_name=name,
            n_distinct=column["n_distinct"],
            null_fraction=column["null_fraction"],
            min_value=column["min"],
            max_value=column["max"],
            histogram=histogram,
        )
    return stats
