"""Interactive SQL + monitoring shell.

``python -m repro.cli`` starts a monitored engine with a storage daemon
and drops into a shell that accepts SQL plus backslash commands for the
monitoring/tuning side:

.. code-block:: text

    repro> create table t (a int not null, primary key (a));
    repro> insert into t values (1), (2);
    repro> select * from t;
    repro> \\monitor           -- recent statements seen by the monitor
    repro> \\analyze           -- run the analyzer, show the report
    repro> \\autopilot         -- one autonomous tuning cycle
    repro> \\load nref 1000    -- load the synthetic NREF database

The command handling lives in :class:`Shell` (one method per command,
returning plain text) so it is scriptable and testable without a TTY.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from repro import faultsim
from repro.core.autopilot import AutonomousTuner, TuningPolicy
from repro.core.alerts import fired_alerts, install_standard_alerts
from repro.core.analyzer import Analyzer
from repro.engine.session import DmlResult
from repro.errors import FaultError, ReproError
from repro.execution.executor import QueryResult
from repro.setups import attach_supervisor, daemon_setup
from repro.workloads import NrefScale, load_nref


def format_rows(columns: tuple[str, ...], rows: list[tuple],
                max_rows: int = 50) -> str:
    """Render a result set as an aligned text table."""
    if not rows:
        return "(0 rows)"
    shown = [tuple(_render_value(v) for v in row) for row in rows[:max_rows]]
    widths = [len(c) for c in columns]
    for row in shown:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(c.ljust(widths[i]) for i, c in enumerate(columns)),
        "-+-".join("-" * widths[i] for i in range(len(columns))),
    ]
    lines += [" | ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(row)) for row in shown]
    suffix = f"({len(rows)} rows)"
    if len(rows) > max_rows:
        suffix = f"({len(rows)} rows, first {max_rows} shown)"
    lines.append(suffix)
    return "\n".join(lines)


def _render_value(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Shell:
    """The scriptable command processor behind the REPL."""

    def __init__(self, database_name: str = "shell") -> None:
        self.setup = daemon_setup(database_name)
        self.database_name = database_name
        self.session = self.setup.engine.connect(database_name)
        install_standard_alerts(self.setup.workload_db)
        self.tuner = AutonomousTuner(
            self.setup.engine, database_name, self.setup.workload_db,
            daemon=self.setup.daemon)
        attach_supervisor(self.setup, tuner=self.tuner)
        self._commands: dict[str, Callable[[str], str]] = {
            "help": self.cmd_help,
            "tables": self.cmd_tables,
            "explain": self.cmd_explain,
            "monitor": self.cmd_monitor,
            "stats": self.cmd_stats,
            "daemon": self.cmd_daemon,
            "health": self.cmd_health,
            "fault": self.cmd_fault,
            "alerts": self.cmd_alerts,
            "analyze": self.cmd_analyze,
            "autopilot": self.cmd_autopilot,
            "tuner": self.cmd_tuner,
            "load": self.cmd_load,
            "dump": self.cmd_dump,
            "restore": self.cmd_restore,
        }

    # -- dispatch ----------------------------------------------------------

    def handle(self, line: str) -> str:
        """Process one input line; returns the text to display."""
        line = line.strip().rstrip(";").strip()
        if not line:
            return ""
        if line.startswith("\\"):
            name, _, argument = line[1:].partition(" ")
            command = self._commands.get(name.lower())
            if command is None:
                return (f"unknown command \\{name}; "
                        f"try \\help")
            return command(argument.strip())
        try:
            result = self.session.execute(line)
        except ReproError as error:
            return f"error: {error}"
        if isinstance(result, QueryResult):
            return format_rows(result.columns, result.rows)
        if isinstance(result, DmlResult):
            detail = f" {result.detail}" if result.detail else ""
            count = f" ({result.rowcount} rows)" if result.rowcount else ""
            return f"{result.kind}{detail}{count}"
        return str(result)

    # -- commands ------------------------------------------------------------

    def cmd_help(self, _argument: str) -> str:
        return "\n".join([
            "SQL statements are executed directly.  Commands:",
            "  \\tables              list tables with structure/geometry",
            "  \\explain <select>    show the optimizer's plan",
            "  \\monitor             recent statements seen by the monitor",
            "  \\stats               engine-wide statistics",
            "  \\daemon [status]     poll + flush the daemon / health snapshot",
            "  \\health              engine-wide health (ladder, workers, supervisor)",
            "  \\fault ...           arm/disarm/inspect failure injection",
            "  \\alerts              alerts fired so far",
            "  \\analyze             run the analyzer on the workload DB",
            "  \\autopilot [dry]     one autonomous tuning cycle",
            "  \\tuner status        tuner health: cycles, quarantine, journal",
            "  \\load nref [n]       load the synthetic NREF database",
            "  \\dump <file>         logical dump (unloaddb) to a file",
            "  \\restore <file>      restore a dump as a new database",
            "  \\quit                leave",
        ])

    def cmd_tables(self, _argument: str) -> str:
        database = self.setup.engine.database(self.database_name)
        rows = []
        for entry in database.catalog.tables():
            if entry.is_virtual:
                rows.append((entry.schema.name, "virtual", "-", "-", "-"))
                continue
            storage = database.storage_for(entry.schema.name)
            rows.append((
                entry.schema.name, entry.structure.value,
                str(storage.row_count), str(storage.page_count),
                str(storage.overflow_page_count),
            ))
        return format_rows(
            ("table", "structure", "rows", "pages", "overflow"), rows)

    def cmd_explain(self, argument: str) -> str:
        if not argument:
            return "usage: \\explain <select statement>"
        try:
            return self.session.explain(argument)
        except ReproError as error:
            return f"error: {error}"

    def cmd_monitor(self, _argument: str) -> str:
        monitor = self.setup.monitor
        records = monitor.statements.values()[-15:]
        rows = [(str(r.frequency), r.text[:70]) for r in records]
        header = (f"{len(monitor.statements)} distinct statements in the "
                  f"window; {monitor.workload.total_appended} executions "
                  f"logged\n")
        return header + format_rows(("freq", "statement"), rows)

    def cmd_stats(self, _argument: str) -> str:
        stats = self.setup.engine.system_statistics()
        return "\n".join(f"  {key}: {value}"
                         for key, value in stats.items())

    def cmd_daemon(self, argument: str) -> str:
        if argument.lower() == "status":
            status = self.setup.daemon.status()
            last_flush = (f"{status.last_flush_at:.1f}"
                          if status.last_flush_at is not None else "never")
            return "\n".join([
                f"  running: {status.running}",
                f"  total polls: {status.total_polls}",
                f"  poll failures: {status.poll_failures} "
                f"(consecutive: {status.consecutive_failures}, "
                f"backoff: {status.backoff_s:g}s)",
                f"  last error: {status.last_error or '-'}",
                f"  pending rows: {status.pending_rows} "
                f"(dropped: {status.rows_dropped})",
                f"  rows flushed: {status.total_rows_flushed}, "
                f"purged: {status.total_rows_purged}",
                f"  last flush at: {last_flush}",
                f"  workers: hangs {status.worker_hangs}, "
                f"deaths {status.worker_deaths}, parked groups "
                f"{list(status.parked_groups) or '-'}",
                f"  restarts: {status.restarts}, last heartbeat: "
                + (f"{status.last_heartbeat:.1f}"
                   if status.last_heartbeat is not None else "never"),
            ])
        try:
            poll = self.setup.daemon.poll_once()
            written, purged = self.setup.daemon.flush()
        except ReproError as error:
            return f"error: {error} (see \\daemon status)"
        return (f"collected {poll.rows_collected} rows; wrote {written}, "
                f"purged {purged}; workload DB now "
                f"{self.setup.workload_db.total_rows()} rows "
                f"({self.setup.workload_db.total_bytes / 1024:.0f} KiB)")

    def cmd_health(self, _argument: str) -> str:
        """The engine-wide health snapshot, pretty-printed as JSON."""
        return json.dumps(self.setup.engine.health(), indent=2,
                          sort_keys=True, default=str)

    def cmd_fault(self, argument: str) -> str:
        usage = ("usage: \\fault arm <point>:<mode>[,k=v...] | "
                 "\\fault disarm <point> | \\fault reset | "
                 "\\fault status | \\fault points")
        action, _, rest = argument.partition(" ")
        action = action.lower()
        rest = rest.strip()
        injector = faultsim.get_injector()
        if action == "arm":
            if not rest:
                return usage
            try:
                faultsim.arm_from_spec(rest, clock=self.setup.engine.clock)
            except (FaultError, ValueError) as error:
                return f"error: {error}"
            return f"armed {rest}"
        if action == "disarm":
            if not rest:
                return usage
            injector.disarm(rest)
            return f"disarmed {rest}"
        if action == "reset":
            injector.reset()
            return "all failure points disarmed, counters cleared"
        if action == "status":
            stats = injector.stats()
            if not stats:
                return "(no failure point has been armed)"
            rows = [(s.point, s.armed or "-", str(s.evaluations),
                     str(s.triggers), str(s.errors_raised),
                     f"{s.latency_injected_s:g}", f"{s.jumps_injected_s:g}")
                    for s in stats]
            return format_rows(
                ("point", "armed", "evals", "triggers", "errors",
                 "latency_s", "jumps_s"), rows)
        if action == "points":
            return "\n".join(f"  {point}" for point in faultsim.FAIL_POINTS)
        return usage

    def cmd_alerts(self, _argument: str) -> str:
        alerts = fired_alerts(self.setup.workload_db)
        if not alerts:
            return "(no alerts fired)"
        return "\n".join(
            f"  [{alert.trigger_name}] {alert.message}"
            for alert in alerts[-20:]
        )

    def cmd_analyze(self, _argument: str) -> str:
        self.setup.daemon.poll_once()
        self.setup.daemon.flush()
        analyzer = Analyzer(self.setup.engine.database(self.database_name))
        report = analyzer.analyze_workload_db(self.setup.workload_db)
        return report.render_text()

    def cmd_autopilot(self, argument: str) -> str:
        if argument.lower() == "dry":
            self.tuner.policy = TuningPolicy(dry_run=True)
        report = self.tuner.run_cycle()
        self.tuner.policy = TuningPolicy()
        return report.describe()

    def cmd_tuner(self, argument: str) -> str:
        if argument.lower() not in ("", "status"):
            return "usage: \\tuner status"
        status = self.tuner.status()
        journal = status.journal
        last_write = (f"{journal.last_write_at:.1f}"
                      if journal.last_write_at is not None else "never")
        lines = [
            f"  running: {status.running}",
            f"  cycles run: {status.cycles_run}",
            f"  cycle failures: {status.cycle_failures} "
            f"(consecutive: {status.consecutive_failures}, "
            f"backoff: {status.backoff_s:g}s)",
            f"  last error: {status.last_error or '-'}",
            f"  changes applied: {status.changes_applied}",
            f"  journal: {journal.entries} entries "
            f"(intent: {journal.intent}, applied: {journal.applied}, "
            f"failed: {journal.failed}, rolled back: {journal.rolled_back})",
            f"  journal writes: {journal.transitions} "
            f"(failures: {journal.write_failures}, "
            f"pruned: {journal.entries_pruned}, last at: {last_write})",
        ]
        if status.quarantined:
            rows = [(q.sql[:48], str(q.failures),
                     f"{q.cooldown_remaining_s:.0f}",
                     (q.last_error[:40] or "-"))
                    for q in status.quarantined]
            lines.append("  quarantined:")
            lines.append(format_rows(
                ("statement", "failures", "cooldown_s", "last error"), rows))
        else:
            lines.append("  quarantined: (none)")
        return "\n".join(lines)

    def cmd_load(self, argument: str) -> str:
        parts = argument.split()
        if not parts or parts[0].lower() != "nref":
            return "usage: \\load nref [proteins]"
        proteins = int(parts[1]) if len(parts) > 1 else 1000
        database = self.setup.engine.database(self.database_name)
        counts = load_nref(database, NrefScale(proteins=proteins))
        total = sum(counts.values())
        return (f"loaded {total:,} rows into {len(counts)} tables "
                f"({database.total_bytes / 1e6:.1f} MB)")

    def cmd_dump(self, argument: str) -> str:
        if not argument:
            return "usage: \\dump <file>"
        from repro.engine.dump import dump_database
        rows = dump_database(
            self.setup.engine.database(self.database_name), argument)
        return f"dumped {rows:,} rows to {argument}"

    def cmd_restore(self, argument: str) -> str:
        if not argument:
            return "usage: \\restore <file>"
        from repro.engine.dump import load_database
        try:
            database = load_database(argument,
                                     self.setup.engine.config,
                                     self.setup.engine.clock)
        except (OSError, ReproError, ValueError) as error:
            return f"error: {error}"
        suffix = 1
        name = database.name
        while self.setup.engine.has_database(name):
            suffix += 1
            name = f"{database.name}_{suffix}"
        database.name = name
        self.setup.engine.attach_database(database)
        return (f"restored as database {name!r} "
                f"({database.total_bytes / 1e6:.1f} MB)")

    def close(self) -> None:
        self.session.close()


def repl(shell: Shell, stdin=None, stdout=None) -> None:
    """Line-oriented read-eval-print loop."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    stdout.write("repro shell — \\help for commands, \\quit to exit\n")
    while True:
        stdout.write("repro> ")
        stdout.flush()
        line = stdin.readline()
        if not line or line.strip().lower() in ("\\quit", "\\q", "exit"):
            stdout.write("bye\n")
            return
        output = shell.handle(line)
        if output:
            stdout.write(output + "\n")


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # `repro lint [paths]` — static analysis entry point; imported
        # lazily so the shell never pays for the analyzer.
        from repro.staticcheck.cli import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "chaos":
        # `repro chaos [--seeds ...]` — the crash/recovery soak harness;
        # also imported lazily.
        from repro.chaos import main as chaos_main
        return chaos_main(argv[1:])
    if argv and argv[0] == "bench":
        # `repro bench [...]` — the figure-4 benchmark gate, including
        # the concurrency axis (overhead vs. session count).
        from repro.bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "drive":
        # `repro drive [...]` — the multi-session traffic driver with
        # its end-to-end persistence invariant checks.
        from repro.workloads.driver import main as drive_main
        return drive_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-shell",
        description="SQL + monitoring shell over the repro engine "
                    "(use `lint` as the first argument for static "
                    "analysis, `chaos` for the crash-recovery soak, "
                    "`bench` for the benchmark gate, `drive` for the "
                    "multi-session traffic driver)")
    parser.add_argument("--database", default="shell",
                        help="database name to create and connect to")
    parser.add_argument("--execute", action="append", default=[],
                        metavar="SQL",
                        help="run a statement/command and exit "
                             "(repeatable)")
    parser.add_argument("--fault", action="append", default=[],
                        metavar="SPEC",
                        help="arm a failure point, e.g. "
                             "'disk.read:every-n=10', "
                             "'session.execute:p=0.05,seed=7,latency=0.2' "
                             "or 'ddl.apply:once' to fail the tuner's "
                             "next change (also: analyzer.scan, "
                             "journal.write; repeatable; "
                             "see \\fault points)")
    arguments = parser.parse_args(argv)
    shell = Shell(arguments.database)
    for spec in arguments.fault:
        try:
            faultsim.arm_from_spec(spec, clock=shell.setup.engine.clock)
        except (FaultError, ValueError) as error:
            print(f"error: bad --fault {spec!r}: {error}", file=sys.stderr)
            shell.close()
            return 2
    try:
        if arguments.execute:
            for statement in arguments.execute:
                output = shell.handle(statement)
                if output:
                    print(output)
            return 0
        repl(shell)
        return 0
    finally:
        shell.close()


if __name__ == "__main__":
    sys.exit(main())
