"""Recursive-descent parser producing AST nodes from token streams."""

from __future__ import annotations

from typing import Any

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import Token, TokenType, tokenize


#: Keywords that may still be used as table/column identifiers.
SOFT_KEYWORDS = frozenset({"structure", "main_pages", "statistics", "key"})


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement (an optional trailing ';' is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.accept_punct(";")
    parser.expect_eof()
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.statement())
        if not parser.accept_punct(";"):
            break
    parser.expect_eof()
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at_eof(self) -> bool:
        return self.current.type is TokenType.EOF

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message} (near {token.value!r} at "
                          f"offset {token.position})")

    def accept_keyword(self, *words: str) -> Token | None:
        if self.current.is_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, *words: str) -> Token:
        token = self.accept_keyword(*words)
        if token is None:
            raise self.error(f"expected {'/'.join(w.upper() for w in words)}")
        return token

    def accept_punct(self, char: str) -> bool:
        if self.current.type is TokenType.PUNCT and self.current.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def accept_operator(self, *ops: str) -> Token | None:
        if (self.current.type is TokenType.OPERATOR
                and self.current.value in ops):
            return self.advance()
        return None

    def expect_identifier(self, what: str = "identifier") -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        if (self.current.type is TokenType.KEYWORD
                and self.current.value in SOFT_KEYWORDS):
            return self.advance().value
        raise self.error(f"expected {what}")

    def expect_integer(self, what: str = "integer") -> int:
        if self.current.type is TokenType.INTEGER:
            return self.advance().value
        raise self.error(f"expected {what}")

    def expect_string(self, what: str = "string literal") -> str:
        if self.current.type is TokenType.STRING:
            return self.advance().value
        raise self.error(f"expected {what}")

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise self.error("unexpected trailing input")

    # -- statements ----------------------------------------------------------

    def statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("select"):
            return self.select_statement()
        if token.is_keyword("insert"):
            return self.insert_statement()
        if token.is_keyword("update"):
            return self.update_statement()
        if token.is_keyword("delete"):
            return self.delete_statement()
        if token.is_keyword("create"):
            return self.create_statement()
        if token.is_keyword("drop"):
            return self.drop_statement()
        if token.is_keyword("modify"):
            return self.modify_statement()
        if token.is_keyword("explain"):
            self.advance()
            inner = self.statement()
            if not isinstance(inner, ast.SelectStatement):
                raise self.error("EXPLAIN supports only SELECT statements")
            return ast.ExplainStatement(inner)
        if token.is_keyword("begin"):
            self.advance()
            return ast.BeginStatement()
        if token.is_keyword("commit"):
            self.advance()
            return ast.CommitStatement()
        if token.is_keyword("rollback"):
            self.advance()
            return ast.RollbackStatement()
        raise self.error("expected a statement")

    # -- SELECT ---------------------------------------------------------------

    def select_statement(self) -> ast.SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct") is not None
        select_items = [self.select_item()]
        while self.accept_punct(","):
            select_items.append(self.select_item())

        from_table: ast.TableRef | None = None
        joins: list[ast.Join] = []
        if self.accept_keyword("from"):
            from_table = self.table_ref()
            while True:
                if self.accept_punct(","):
                    joins.append(ast.Join(self.table_ref(), None, "cross"))
                    continue
                if self.accept_keyword("cross"):
                    self.expect_keyword("join")
                    joins.append(ast.Join(self.table_ref(), None, "cross"))
                    continue
                if self.accept_keyword("left"):
                    self.accept_keyword("outer")
                    self.expect_keyword("join")
                    right = self.table_ref()
                    self.expect_keyword("on")
                    condition = self.expression()
                    joins.append(ast.Join(right, condition, "left"))
                    continue
                if self.current.is_keyword("join", "inner"):
                    self.accept_keyword("inner")
                    self.expect_keyword("join")
                    right = self.table_ref()
                    self.expect_keyword("on")
                    condition = self.expression()
                    joins.append(ast.Join(right, condition, "inner"))
                    continue
                break

        where = self.expression() if self.accept_keyword("where") else None
        group_by: list[ast.Expression] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.expression())
            while self.accept_punct(","):
                group_by.append(self.expression())
        having = self.expression() if self.accept_keyword("having") else None
        order_by: list[ast.OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self.order_item())
            while self.accept_punct(","):
                order_by.append(self.order_item())
        limit = offset = None
        if self.accept_keyword("limit"):
            limit = self.expect_integer("LIMIT count")
            if self.accept_keyword("offset"):
                offset = self.expect_integer("OFFSET count")
        return ast.SelectStatement(
            select_items=tuple(select_items),
            from_table=from_table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def select_item(self) -> ast.SelectItem:
        expression = self.expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.SelectItem(expression, alias)

    def table_ref(self) -> ast.TableRef:
        name = self.expect_identifier("table name")
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def order_item(self) -> ast.OrderItem:
        expression = self.expression()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return ast.OrderItem(expression, descending)

    # -- DML --------------------------------------------------------------------

    def insert_statement(self) -> ast.InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_identifier("table name")
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_identifier("column name"))
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        self.expect_keyword("values")
        rows = [self.value_row()]
        while self.accept_punct(","):
            rows.append(self.value_row())
        return ast.InsertStatement(table, tuple(columns), tuple(rows))

    def value_row(self) -> tuple[ast.Expression, ...]:
        self.expect_punct("(")
        values = [self.expression()]
        while self.accept_punct(","):
            values.append(self.expression())
        self.expect_punct(")")
        return tuple(values)

    def update_statement(self) -> ast.UpdateStatement:
        self.expect_keyword("update")
        table = self.expect_identifier("table name")
        self.expect_keyword("set")
        assignments = [self.assignment()]
        while self.accept_punct(","):
            assignments.append(self.assignment())
        where = self.expression() if self.accept_keyword("where") else None
        return ast.UpdateStatement(table, tuple(assignments), where)

    def assignment(self) -> tuple[str, ast.Expression]:
        column = self.expect_identifier("column name")
        if self.accept_operator("=") is None:
            raise self.error("expected '=' in assignment")
        return column, self.expression()

    def delete_statement(self) -> ast.DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_identifier("table name")
        where = self.expression() if self.accept_keyword("where") else None
        return ast.DeleteStatement(table, where)

    # -- DDL ----------------------------------------------------------------------

    def create_statement(self) -> ast.Statement:
        self.expect_keyword("create")
        if self.accept_keyword("table"):
            return self.create_table_body()
        unique = self.accept_keyword("unique") is not None
        virtual = self.accept_keyword("virtual") is not None
        if self.accept_keyword("index"):
            return self.create_index_body(unique, virtual)
        if unique or virtual:
            raise self.error("expected INDEX")
        if self.accept_keyword("statistics"):
            return self.create_statistics_body()
        if self.accept_keyword("trigger"):
            return self.create_trigger_body()
        raise self.error("expected TABLE, INDEX, STATISTICS or TRIGGER")

    def create_table_body(self) -> ast.CreateTableStatement:
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.accept_keyword("primary"):
                self.expect_keyword("key")
                self.expect_punct("(")
                key = [self.expect_identifier("column name")]
                while self.accept_punct(","):
                    key.append(self.expect_identifier("column name"))
                self.expect_punct(")")
                primary_key = tuple(key)
            else:
                columns.append(self.column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        structure = None
        main_pages = None
        if self.accept_keyword("with"):
            while True:
                if self.accept_keyword("structure"):
                    if self.accept_operator("=") is None:
                        raise self.error("expected '=' after STRUCTURE")
                    structure = self.expect_identifier("structure name")
                elif self.accept_keyword("main_pages"):
                    if self.accept_operator("=") is None:
                        raise self.error("expected '=' after MAIN_PAGES")
                    main_pages = self.expect_integer("page count")
                else:
                    raise self.error("expected STRUCTURE or MAIN_PAGES")
                if not self.accept_punct(","):
                    break
        return ast.CreateTableStatement(
            table, tuple(columns), primary_key, structure, main_pages
        )

    _TYPE_NAMES = frozenset({"int", "integer", "bigint", "float", "double",
                             "real", "varchar", "text", "bool", "boolean"})

    def column_def(self) -> ast.ColumnDef:
        name = self.expect_identifier("column name")
        if self.current.type is not TokenType.IDENT \
                or self.current.value not in self._TYPE_NAMES:
            raise self.error("expected a type name")
        type_name = self.advance().value
        length = 0
        if self.accept_punct("("):
            length = self.expect_integer("length")
            self.expect_punct(")")
        nullable = True
        if self.accept_keyword("not"):
            self.expect_keyword("null")
            nullable = False
        elif self.accept_keyword("null"):
            nullable = True
        return ast.ColumnDef(name, type_name, length, nullable)

    def create_index_body(self, unique: bool,
                          virtual: bool) -> ast.CreateIndexStatement:
        index = self.expect_identifier("index name")
        self.expect_keyword("on")
        table = self.expect_identifier("table name")
        self.expect_punct("(")
        columns = [self.expect_identifier("column name")]
        while self.accept_punct(","):
            columns.append(self.expect_identifier("column name"))
        self.expect_punct(")")
        return ast.CreateIndexStatement(index, table, tuple(columns),
                                        unique, virtual)

    def create_statistics_body(self) -> ast.CreateStatisticsStatement:
        self.expect_keyword("on")
        table = self.expect_identifier("table name")
        columns: list[str] = []
        if self.accept_punct("("):
            columns.append(self.expect_identifier("column name"))
            while self.accept_punct(","):
                columns.append(self.expect_identifier("column name"))
            self.expect_punct(")")
        return ast.CreateStatisticsStatement(table, tuple(columns))

    def create_trigger_body(self) -> ast.CreateTriggerStatement:
        name = self.expect_identifier("trigger name")
        self.expect_keyword("on")
        table = self.expect_identifier("table name")
        self.expect_keyword("when")
        condition = self.expression()
        self.expect_keyword("raise")
        message = self.expect_string("alert message")
        return ast.CreateTriggerStatement(name, table, condition, message)

    def drop_statement(self) -> ast.Statement:
        self.expect_keyword("drop")
        if self.accept_keyword("table"):
            return ast.DropTableStatement(self.expect_identifier("table name"))
        if self.accept_keyword("index"):
            return ast.DropIndexStatement(self.expect_identifier("index name"))
        if self.accept_keyword("trigger"):
            return ast.DropTriggerStatement(
                self.expect_identifier("trigger name"))
        raise self.error("expected TABLE, INDEX or TRIGGER")

    def modify_statement(self) -> ast.ModifyStatement:
        self.expect_keyword("modify")
        table = self.expect_identifier("table name")
        self.expect_keyword("to")
        structure = self.expect_identifier("structure name")
        main_pages = None
        if self.accept_keyword("with"):
            self.expect_keyword("main_pages")
            if self.accept_operator("=") is None:
                raise self.error("expected '=' after MAIN_PAGES")
            main_pages = self.expect_integer("page count")
        return ast.ModifyStatement(table, structure, main_pages)

    # -- expressions -----------------------------------------------------------

    def expression(self) -> ast.Expression:
        return self.or_expression()

    def or_expression(self) -> ast.Expression:
        left = self.and_expression()
        while self.accept_keyword("or"):
            left = ast.BinaryOp("or", left, self.and_expression())
        return left

    def and_expression(self) -> ast.Expression:
        left = self.not_expression()
        while self.accept_keyword("and"):
            left = ast.BinaryOp("and", left, self.not_expression())
        return left

    def not_expression(self) -> ast.Expression:
        if self.accept_keyword("not"):
            return ast.UnaryOp("not", self.not_expression())
        return self.comparison()

    _COMPARISONS = ("=", "!=", "<>", "<=", ">=", "<", ">")

    def comparison(self) -> ast.Expression:
        left = self.additive()
        token = self.accept_operator(*self._COMPARISONS)
        if token is not None:
            op = "!=" if token.value == "<>" else token.value
            return ast.BinaryOp(op, left, self.additive())
        if self.accept_keyword("is"):
            negated = self.accept_keyword("not") is not None
            self.expect_keyword("null")
            return ast.IsNull(left, negated)
        negated = False
        if self.current.is_keyword("not"):
            follower = self._tokens[self._pos + 1]
            if follower.is_keyword("in", "between", "like"):
                self.advance()
                negated = True
        if self.accept_keyword("in"):
            self.expect_punct("(")
            if self.current.is_keyword("select"):
                subquery = ast.Subquery(self.select_statement())
                self.expect_punct(")")
                return ast.InList(left, (subquery,), negated)
            items = [self.expression()]
            while self.accept_punct(","):
                items.append(self.expression())
            self.expect_punct(")")
            return ast.InList(left, tuple(items), negated)
        if self.accept_keyword("between"):
            low = self.additive()
            self.expect_keyword("and")
            high = self.additive()
            return ast.Between(left, low, high, negated)
        if self.accept_keyword("like"):
            pattern = self.additive()
            node: ast.Expression = ast.BinaryOp("like", left, pattern)
            return ast.UnaryOp("not", node) if negated else node
        if negated:
            raise self.error("dangling NOT")
        return left

    def additive(self) -> ast.Expression:
        left = self.multiplicative()
        while True:
            token = self.accept_operator("+", "-")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.multiplicative())

    def multiplicative(self) -> ast.Expression:
        left = self.unary()
        while True:
            token = self.accept_operator("*", "/", "%")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.unary())

    def unary(self) -> ast.Expression:
        if self.accept_operator("-"):
            operand = self.unary()
            # Constant-fold negative numeric literals so '-1' round-trips.
            if isinstance(operand, ast.Literal) \
                    and isinstance(operand.value, (int, float)) \
                    and not isinstance(operand.value, bool):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.accept_operator("+"):
            return self.unary()
        return self.primary()

    def primary(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.INTEGER or token.type is TokenType.FLOAT:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("null"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self.advance()
            return ast.Literal(False)
        if token.type is TokenType.OPERATOR and token.value == "*":
            self.advance()
            return ast.Star()
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            if self.current.is_keyword("select"):
                subquery = ast.Subquery(self.select_statement())
                self.expect_punct(")")
                return subquery
            inner = self.expression()
            self.expect_punct(")")
            return inner
        if token.type is TokenType.IDENT or (
                token.type is TokenType.KEYWORD
                and token.value in SOFT_KEYWORDS):
            return self._identifier_expression()
        raise self.error("expected an expression")

    def _identifier_expression(self) -> ast.Expression:
        name = self.advance().value
        # function call
        if self.current.type is TokenType.PUNCT and self.current.value == "(":
            self.advance()
            distinct = self.accept_keyword("distinct") is not None
            args: list[ast.Expression] = []
            if not (self.current.type is TokenType.PUNCT
                    and self.current.value == ")"):
                args.append(self.expression())
                while self.accept_punct(","):
                    args.append(self.expression())
            self.expect_punct(")")
            return ast.FunctionCall(name, tuple(args), distinct)
        # qualified reference: t.col or t.*
        if self.current.type is TokenType.PUNCT and self.current.value == ".":
            self.advance()
            if self.current.type is TokenType.OPERATOR \
                    and self.current.value == "*":
                self.advance()
                return ast.Star(table=name)
            column = self.expect_identifier("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)
