"""SQL front-end: lexer, AST and recursive-descent parser.

The dialect covers what the paper's workloads and tooling need:
SELECT (joins, aggregation, ordering, LIMIT), INSERT/UPDATE/DELETE,
DDL (CREATE/DROP TABLE and INDEX, including VIRTUAL indexes), Ingres'
MODIFY ... TO <structure>, CREATE STATISTICS ("optimizedb") and simple
row-insert triggers used by the workload database's alerting.
"""

from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import parse_statement, parse_script

__all__ = ["Token", "TokenType", "tokenize", "parse_statement", "parse_script"]
