"""Abstract syntax tree nodes for the SQL dialect.

Expressions and statements are frozen dataclasses; the optimizer and
executor treat them as immutable values.  Every expression node can
render itself back to SQL text (``to_sql``), which the monitor uses for
normalized statement texts and the analyzer for report rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expression:
    """Base class for expression nodes."""

    def to_sql(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expression):
    value: Any

    def to_sql(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly qualified column reference (``t.a`` or ``a``)."""

    name: str
    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``t.*`` in a select list or COUNT(*)."""

    table: str | None = None

    def to_sql(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class UnaryOp(Expression):
    op: str  # "-" or "not"
    operand: Expression

    def to_sql(self) -> str:
        if self.op == "not":
            return f"(NOT ({self.operand.to_sql()}))"
        return f"(-({self.operand.to_sql()}))"


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str  # comparison, arithmetic, "and", "or"
    left: Expression
    right: Expression

    def to_sql(self) -> str:
        op = self.op.upper() if self.op in ("and", "or", "like") else self.op
        return f"({self.left.to_sql()} {op} {self.right.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"(({self.operand.to_sql()}) {suffix})"


@dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def to_sql(self) -> str:
        items = ", ".join(item.to_sql() for item in self.items)
        word = "NOT IN" if self.negated else "IN"
        return f"(({self.operand.to_sql()}) {word} ({items}))"


@dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def to_sql(self) -> str:
        word = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (f"(({self.operand.to_sql()}) {word} "
                f"({self.low.to_sql()}) AND ({self.high.to_sql()}))")


@dataclass(frozen=True)
class Subquery(Expression):
    """A parenthesized SELECT used as an expression.

    Only *uncorrelated* subqueries are supported: the session evaluates
    them up front and splices the result in as literals before the outer
    statement is optimized."""

    statement: "SelectStatement"

    def to_sql(self) -> str:
        return "(<subquery>)"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar or aggregate function call."""

    name: str
    args: tuple[Expression, ...]
    distinct: bool = False

    AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

    @property
    def is_aggregate(self) -> bool:
        return self.name in self.AGGREGATES

    def to_sql(self) -> str:
        inner = ", ".join(arg.to_sql() for arg in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


# --------------------------------------------------------------------------
# SELECT machinery
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None

    def output_name(self, ordinal: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        return f"col{ordinal}"


@dataclass(frozen=True)
class TableRef:
    """A base table in the FROM clause with an optional alias."""

    table_name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        """The name this table is referred to by in the query."""
        return self.alias or self.table_name


@dataclass(frozen=True)
class Join:
    """One JOIN step: ``<left> JOIN right ON condition``."""

    right: TableRef
    condition: Expression | None
    kind: str = "inner"  # "inner", "cross" or "left"


@dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    select_items: tuple[SelectItem, ...]
    from_table: TableRef | None
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    offset: int | None = None
    distinct: bool = False


# --------------------------------------------------------------------------
# DML
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class InsertStatement:
    table_name: str
    columns: tuple[str, ...]  # empty means all, in schema order
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class UpdateStatement:
    table_name: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement:
    table_name: str
    where: Expression | None = None


# --------------------------------------------------------------------------
# DDL and utility statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # "int", "float", "varchar", "text", "bool"
    length: int = 0
    nullable: bool = True


@dataclass(frozen=True)
class CreateTableStatement:
    table_name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    structure: str | None = None  # "heap" / "btree"
    main_pages: int | None = None


@dataclass(frozen=True)
class DropTableStatement:
    table_name: str


@dataclass(frozen=True)
class CreateIndexStatement:
    index_name: str
    table_name: str
    columns: tuple[str, ...]
    unique: bool = False
    virtual: bool = False


@dataclass(frozen=True)
class DropIndexStatement:
    index_name: str


@dataclass(frozen=True)
class ModifyStatement:
    """Ingres' ``MODIFY <table> TO <structure>``."""

    table_name: str
    structure: str
    main_pages: int | None = None


@dataclass(frozen=True)
class CreateStatisticsStatement:
    """``CREATE STATISTICS ON t [(cols)]`` — Ingres' optimizedb."""

    table_name: str
    columns: tuple[str, ...] = ()  # empty means all columns


@dataclass(frozen=True)
class CreateTriggerStatement:
    """``CREATE TRIGGER name ON t WHEN <expr> RAISE '<message>'``.

    Fires after each row insert into ``t`` when the condition holds over
    the inserted row; the paper uses such triggers on the workload DB to
    alert the DBA (e.g. max sessions reached).
    """

    trigger_name: str
    table_name: str
    condition: Expression
    message: str


@dataclass(frozen=True)
class DropTriggerStatement:
    trigger_name: str


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN <select>``: return the optimizer's plan as text."""

    statement: "SelectStatement"


@dataclass(frozen=True)
class BeginStatement:
    pass


@dataclass(frozen=True)
class CommitStatement:
    pass


@dataclass(frozen=True)
class RollbackStatement:
    pass


Statement = (
    SelectStatement | InsertStatement | UpdateStatement | DeleteStatement
    | CreateTableStatement | DropTableStatement | CreateIndexStatement
    | DropIndexStatement | ModifyStatement | CreateStatisticsStatement
    | CreateTriggerStatement | DropTriggerStatement | ExplainStatement
    | BeginStatement | CommitStatement | RollbackStatement
)


def walk_expression(expr: Expression):
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk_expression(expr.left)
        yield from walk_expression(expr.right)
    elif isinstance(expr, IsNull):
        yield from walk_expression(expr.operand)
    elif isinstance(expr, InList):
        yield from walk_expression(expr.operand)
        for item in expr.items:
            yield from walk_expression(item)
    elif isinstance(expr, Between):
        yield from walk_expression(expr.operand)
        yield from walk_expression(expr.low)
        yield from walk_expression(expr.high)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expression(arg)


def transform_expression(expr: Expression, fn) -> Expression:
    """Rebuild ``expr`` bottom-up, mapping every node through ``fn``.

    ``fn`` receives each (already-transformed-children) node and returns
    the node to use in its place.  Subquery nodes are treated as opaque
    leaves — their inner statement is not descended into.
    """
    if isinstance(expr, UnaryOp):
        rebuilt: Expression = UnaryOp(expr.op,
                                      transform_expression(expr.operand, fn))
    elif isinstance(expr, BinaryOp):
        rebuilt = BinaryOp(expr.op,
                           transform_expression(expr.left, fn),
                           transform_expression(expr.right, fn))
    elif isinstance(expr, IsNull):
        rebuilt = IsNull(transform_expression(expr.operand, fn),
                         expr.negated)
    elif isinstance(expr, InList):
        rebuilt = InList(
            transform_expression(expr.operand, fn),
            tuple(transform_expression(i, fn) for i in expr.items),
            expr.negated,
        )
    elif isinstance(expr, Between):
        rebuilt = Between(
            transform_expression(expr.operand, fn),
            transform_expression(expr.low, fn),
            transform_expression(expr.high, fn),
            expr.negated,
        )
    elif isinstance(expr, FunctionCall):
        rebuilt = FunctionCall(
            expr.name,
            tuple(transform_expression(a, fn) for a in expr.args),
            expr.distinct,
        )
    else:
        rebuilt = expr
    return fn(rebuilt)


def contains_subquery(expr: Expression) -> bool:
    """True if ``expr`` contains a Subquery node at any depth."""
    found = False

    def check(node: Expression) -> Expression:
        nonlocal found
        if isinstance(node, Subquery):
            found = True
        return node

    transform_expression(expr, check)
    return found


def referenced_columns(expr: Expression) -> tuple[ColumnRef, ...]:
    """All column references inside ``expr``."""
    return tuple(node for node in walk_expression(expr)
                 if isinstance(node, ColumnRef))


def contains_aggregate(expr: Expression) -> bool:
    """True if ``expr`` contains an aggregate function call."""
    return any(isinstance(node, FunctionCall) and node.is_aggregate
               for node in walk_expression(expr))
