"""Hand-written SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import LexerError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset({
    "select", "distinct", "from", "where", "group", "by", "having",
    "order", "asc", "desc", "limit", "offset", "join", "inner", "left",
    "cross", "on", "as", "and", "or", "not", "in", "between", "like",
    "is", "null", "true", "false", "insert", "into", "values", "update",
    "set", "delete", "create", "drop", "table", "index", "unique",
    "virtual", "primary", "key", "with", "structure", "main_pages",
    "modify", "to", "statistics", "trigger", "when", "raise", "begin",
    "commit", "rollback", "exists", "explain", "outer",
})

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = frozenset("(),.;")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""

    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    length = len(text)
    pos = 0
    while pos < length:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "-" and text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline + 1
            continue
        if char == "'":
            value, pos = _scan_string(text, pos)
            yield Token(TokenType.STRING, value, pos)
            continue
        if char.isdigit() or (char == "." and pos + 1 < length
                              and text[pos + 1].isdigit()):
            token, pos = _scan_number(text, pos)
            yield token
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < length and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenType.KEYWORD, lowered, start)
            else:
                yield Token(TokenType.IDENT, lowered, start)
            continue
        if char == '"':
            end = text.find('"', pos + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", pos)
            yield Token(TokenType.IDENT, text[pos + 1 : end].lower(), pos)
            pos = end + 1
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, pos):
                yield Token(TokenType.OPERATOR, op, pos)
                pos += len(op)
                matched = True
                break
        if matched:
            continue
        if char in _PUNCT:
            yield Token(TokenType.PUNCT, char, pos)
            pos += 1
            continue
        raise LexerError(f"unexpected character {char!r}", pos)
    yield Token(TokenType.EOF, None, length)


def _scan_string(text: str, pos: int) -> tuple[str, int]:
    """Scan a single-quoted string with '' as the escape for a quote."""
    start = pos
    pos += 1
    parts: list[str] = []
    while pos < len(text):
        char = text[pos]
        if char == "'":
            if text.startswith("''", pos):
                parts.append("'")
                pos += 2
                continue
            return "".join(parts), pos + 1
        parts.append(char)
        pos += 1
    raise LexerError("unterminated string literal", start)


def _scan_number(text: str, pos: int) -> tuple[Token, int]:
    start = pos
    length = len(text)
    while pos < length and text[pos].isdigit():
        pos += 1
    is_float = False
    if pos < length and text[pos] == ".":
        is_float = True
        pos += 1
        while pos < length and text[pos].isdigit():
            pos += 1
    if pos < length and text[pos] in "eE":
        exp_end = pos + 1
        if exp_end < length and text[exp_end] in "+-":
            exp_end += 1
        if exp_end < length and text[exp_end].isdigit():
            is_float = True
            pos = exp_end
            while pos < length and text[pos].isdigit():
                pos += 1
    literal = text[start:pos]
    if is_float:
        return Token(TokenType.FLOAT, float(literal), start), pos
    return Token(TokenType.INTEGER, int(literal), start), pos
