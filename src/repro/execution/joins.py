"""Join operators: nested loop, hash and index-lookup joins."""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import ExecutionError
from repro.execution.evaluator import compile_expression, compile_predicate
from repro.execution.scan import Counters, StorageCatalog
from repro.optimizer.plans import (
    HashJoinPlan,
    IndexLookupJoinPlan,
    LeftOuterJoinPlan,
    NestedLoopJoinPlan,
)

RowIterator = Iterator[tuple]
Builder = Callable[[], RowIterator]


def nested_loop_join(plan: NestedLoopJoinPlan, left_rows: RowIterator,
                     right_rows: RowIterator,
                     counters: Counters) -> RowIterator:
    """Materialize the inner side once, then loop per outer row."""
    predicate = compile_predicate(plan.condition, plan.scope)
    inner = list(right_rows)
    for left in left_rows:
        for right in inner:
            counters.tuples += 1
            combined = left + right
            if predicate(combined):
                yield combined


def hash_join(plan: HashJoinPlan, left_rows: RowIterator,
              right_rows: RowIterator, counters: Counters) -> RowIterator:
    """Build on the right input, probe with the left input."""
    left_keys = [compile_expression(k, plan.left.scope)
                 for k in plan.left_keys]
    right_keys = [compile_expression(k, plan.right.scope)
                  for k in plan.right_keys]
    residual = compile_predicate(plan.residual, plan.scope)
    table: dict[tuple, list[tuple]] = {}
    for row in right_rows:
        counters.tuples += 1
        key = tuple(getter(row) for getter in right_keys)
        if any(value is None for value in key):
            continue  # NULL never equi-joins
        table.setdefault(key, []).append(row)
    for left in left_rows:
        counters.tuples += 1
        key = tuple(getter(left) for getter in left_keys)
        if any(value is None for value in key):
            continue
        for right in table.get(key, ()):
            combined = left + right
            if residual(combined):
                counters.tuples += 1
                yield combined


def left_outer_join(plan: LeftOuterJoinPlan, left_rows: RowIterator,
                    right_rows: RowIterator,
                    counters: Counters) -> RowIterator:
    """Preserve every left row; NULL-pad the right side when unmatched."""
    right_width = len(plan.right.scope)
    nulls = (None,) * right_width
    materialized = list(right_rows)
    if plan.left_keys:
        left_getters = [compile_expression(k, plan.left.scope)
                        for k in plan.left_keys]
        right_getters = [compile_expression(k, plan.right.scope)
                         for k in plan.right_keys]
        residual = compile_predicate(plan.residual, plan.scope)
        table: dict[tuple, list[tuple]] = {}
        for row in materialized:
            counters.tuples += 1
            key = tuple(getter(row) for getter in right_getters)
            if any(value is None for value in key):
                continue
            table.setdefault(key, []).append(row)
        for left in left_rows:
            counters.tuples += 1
            key = tuple(getter(left) for getter in left_getters)
            matched = False
            if not any(value is None for value in key):
                for right in table.get(key, ()):
                    combined = left + right
                    if residual(combined):
                        matched = True
                        yield combined
            if not matched:
                yield left + nulls
        return
    predicate = compile_predicate(plan.condition, plan.scope)
    for left in left_rows:
        matched = False
        for right in materialized:
            counters.tuples += 1
            combined = left + right
            if predicate(combined):
                matched = True
                yield combined
        if not matched:
            yield left + nulls


def index_lookup_join(plan: IndexLookupJoinPlan, left_rows: RowIterator,
                      catalog: StorageCatalog,
                      counters: Counters) -> RowIterator:
    """Per outer row, probe the inner table's B-Tree or secondary index."""
    if plan.virtual:
        raise ExecutionError(
            f"plan probes virtual index {plan.via_index!r}; virtual indexes "
            f"can be costed but not executed"
        )
    outer_keys = [compile_expression(k, plan.left.scope)
                  for k in plan.outer_keys]
    residual = compile_predicate(plan.residual, plan.scope)
    storage = catalog.storage_for(plan.table_name)
    if plan.via_index is None:
        seek = storage.seek  # primary structure: B-Tree or hash
        fetch_base = None
    else:
        seek = catalog.index_storage_for(plan.via_index).seek
        fetch_base = storage.fetch
    for left in left_rows:
        probe = tuple(getter(left) for getter in outer_keys)
        if any(value is None for value in probe):
            continue
        for _rowid, entry in seek(probe):
            counters.tuples += 1
            inner_row = entry if fetch_base is None else fetch_base(entry[-1])
            combined = left + inner_row
            if residual(combined):
                yield combined
