"""Row-shaping operators: filter, project, aggregate, sort, distinct, limit."""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import ExecutionError
from repro.execution.evaluator import (
    compile_expression,
    compile_predicate,
    sort_key,
)
from repro.execution.scan import Counters
from repro.optimizer.plans import (
    AggregatePlan,
    DistinctPlan,
    FilterPlan,
    LimitPlan,
    ProjectPlan,
    SortPlan,
)
from repro.sql import ast_nodes as ast

RowIterator = Iterator[tuple]


def filter_rows(plan: FilterPlan, rows: RowIterator,
                counters: Counters) -> RowIterator:
    predicate = compile_predicate(plan.condition, plan.child.scope)
    for row in rows:
        counters.tuples += 1
        if predicate(row):
            yield row


def project_rows(plan: ProjectPlan, rows: RowIterator,
                 counters: Counters) -> RowIterator:
    getters = [compile_expression(e, plan.child.scope)
               for e in plan.expressions]
    for row in rows:
        counters.tuples += 1
        yield tuple(getter(row) for getter in getters)


def distinct_rows(plan: DistinctPlan, rows: RowIterator,
                  counters: Counters) -> RowIterator:
    seen: set = set()
    for row in rows:
        counters.tuples += 1
        key = sort_key(row)
        if key not in seen:
            seen.add(key)
            yield row


def limit_rows(plan: LimitPlan, rows: RowIterator,
               counters: Counters) -> RowIterator:
    offset = plan.offset or 0
    remaining = plan.limit
    for i, row in enumerate(rows):
        if i < offset:
            continue
        if remaining is not None:
            if remaining <= 0:
                return
            remaining -= 1
        counters.tuples += 1
        yield row


def sort_rows(plan: SortPlan, rows: RowIterator,
              counters: Counters) -> RowIterator:
    getters = [(compile_expression(e, plan.child.scope), descending)
               for e, descending in plan.sort_keys]
    materialized = list(rows)
    counters.tuples += len(materialized)
    # Stable multi-key sort: apply keys right-to-left.
    for getter, descending in reversed(getters):
        materialized.sort(
            key=lambda row: sort_key((getter(row),)),
            reverse=descending,
        )
    return iter(materialized)


class _Accumulator:
    """State of one aggregate function for one group."""

    __slots__ = ("function", "distinct", "count", "total", "minimum",
                 "maximum", "seen")

    def __init__(self, function: str, distinct: bool) -> None:
        self.function = function
        self.distinct = distinct
        self.count = 0
        self.total: Any = None
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: set | None = set() if distinct else None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.seen is not None:
            marker = (type(value).__name__, value)
            if marker in self.seen:
                return
            self.seen.add(marker)
        self.count += 1
        if self.function in ("sum", "avg"):
            self.total = value if self.total is None else self.total + value
        elif self.function == "min":
            if self.minimum is None or value < self.minimum:
                self.minimum = value
        elif self.function == "max":
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self) -> Any:
        if self.function == "count":
            return self.count
        if self.function == "sum":
            return self.total
        if self.function == "avg":
            return None if self.count == 0 else self.total / self.count
        if self.function == "min":
            return self.minimum
        if self.function == "max":
            return self.maximum
        raise ExecutionError(f"unknown aggregate {self.function!r}")


def aggregate_rows(plan: AggregatePlan, rows: RowIterator,
                   counters: Counters) -> RowIterator:
    """Hash aggregation; output = group expressions then aggregates."""
    child_scope = plan.child.scope
    group_getters = [compile_expression(e, child_scope)
                     for e in plan.group_expressions]
    agg_specs: list[tuple[str, bool, Any]] = []
    for call in plan.aggregates:
        if call.name == "count" and (
                not call.args or isinstance(call.args[0], ast.Star)):
            agg_specs.append(("count", call.distinct, None))
        else:
            if len(call.args) != 1:
                raise ExecutionError(
                    f"aggregate {call.name}() takes exactly one argument")
            agg_specs.append((
                call.name, call.distinct,
                compile_expression(call.args[0], child_scope),
            ))

    groups: dict[tuple, tuple[tuple, list[_Accumulator]]] = {}
    saw_rows = False
    for row in rows:
        counters.tuples += 1
        saw_rows = True
        values = tuple(getter(row) for getter in group_getters)
        key = sort_key(values)
        entry = groups.get(key)
        if entry is None:
            entry = (values, [_Accumulator(name, distinct)
                              for name, distinct, _ in agg_specs])
            groups[key] = entry
        for (name, _distinct, getter), accumulator in zip(agg_specs,
                                                          entry[1]):
            if getter is None:  # COUNT(*)
                accumulator.count += 1
            else:
                accumulator.add(getter(row))

    if not groups and not plan.group_expressions:
        # Global aggregate over an empty input still yields one row.
        empty = [_Accumulator(name, distinct)
                 for name, distinct, _ in agg_specs]
        yield tuple(acc.result() for acc in empty)
        return
    del saw_rows
    for values, accumulators in groups.values():
        yield values + tuple(acc.result() for acc in accumulators)
