"""Volcano-style iterator executor.

Turns physical plans into iterator trees over the storage engine,
counting logical page accesses and tuples processed so the monitor can
record *actual* costs in the same units the optimizer estimates in.
"""

from repro.execution.executor import Executor, ExecutionMetrics, QueryResult

__all__ = ["Executor", "ExecutionMetrics", "QueryResult"]
