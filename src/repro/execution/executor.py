"""Plan-to-iterator compilation and per-query work accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ExecutionError
from repro.execution import joins, scan, shaping
from repro.execution.scan import Counters, StorageCatalog
from repro.optimizer import plans
from repro.optimizer.optimizer import _EmptySourcePlan
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskManager


@dataclass(frozen=True)
class ExecutionMetrics:
    """Work performed by one statement, in engine units.

    ``logical_reads`` counts buffer-pool page accesses (hits + misses):
    this is the I/O measure comparable with the optimizer's estimates.
    ``physical_reads``/``physical_writes`` count actual disk traffic.
    """

    logical_reads: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    tuples_processed: int = 0
    rows_returned: int = 0


@dataclass
class QueryResult:
    """Rows plus the measured execution metrics."""

    columns: tuple[str, ...]
    rows: list[tuple]
    metrics: ExecutionMetrics

    def __len__(self) -> int:
        return len(self.rows)

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def as_dicts(self) -> list[dict]:
        """Rows as column-keyed dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class Executor:
    """Runs physical plans against a storage catalog."""

    def __init__(self, catalog: StorageCatalog, pool: BufferPool,
                 disk: DiskManager) -> None:
        self._catalog = catalog
        self._pool = pool
        self._disk = disk

    def execute(self, plan: plans.PlanNode,
                output_names: tuple[str, ...]) -> QueryResult:
        """Materialize the plan's output and measure the work done."""
        pool_before = self._pool.stats()
        disk_before = self._disk.counters()
        counters = Counters()
        rows = list(self._build(plan, counters))
        pool_after = self._pool.stats()
        disk_after = self._disk.counters()
        metrics = ExecutionMetrics(
            logical_reads=(pool_after.hits - pool_before.hits)
            + (pool_after.misses - pool_before.misses),
            physical_reads=disk_after.reads - disk_before.reads,
            physical_writes=disk_after.writes - disk_before.writes,
            tuples_processed=counters.tuples,
            rows_returned=len(rows),
        )
        return QueryResult(columns=output_names, rows=rows, metrics=metrics)

    # -- dispatch ------------------------------------------------------------

    def _build(self, plan: plans.PlanNode,
               counters: Counters) -> Iterator[tuple]:
        if isinstance(plan, plans.SeqScanPlan):
            return scan.seq_scan(plan, self._catalog, counters)
        if isinstance(plan, plans.BTreeScanPlan):
            return scan.btree_scan(plan, self._catalog, counters)
        if isinstance(plan, plans.HashScanPlan):
            return scan.hash_scan(plan, self._catalog, counters)
        if isinstance(plan, plans.IndexScanPlan):
            return scan.index_scan(plan, self._catalog, counters)
        if isinstance(plan, plans.NestedLoopJoinPlan):
            return joins.nested_loop_join(
                plan,
                self._build(plan.left, counters),
                self._build(plan.right, counters),
                counters,
            )
        if isinstance(plan, plans.HashJoinPlan):
            return joins.hash_join(
                plan,
                self._build(plan.left, counters),
                self._build(plan.right, counters),
                counters,
            )
        if isinstance(plan, plans.LeftOuterJoinPlan):
            return joins.left_outer_join(
                plan,
                self._build(plan.left, counters),
                self._build(plan.right, counters),
                counters,
            )
        if isinstance(plan, plans.IndexLookupJoinPlan):
            return joins.index_lookup_join(
                plan,
                self._build(plan.left, counters),
                self._catalog,
                counters,
            )
        if isinstance(plan, plans.FilterPlan):
            return shaping.filter_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, plans.ProjectPlan):
            return shaping.project_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, plans.AggregatePlan):
            return shaping.aggregate_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, plans.SortPlan):
            return shaping.sort_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, plans.DistinctPlan):
            return shaping.distinct_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, plans.LimitPlan):
            return shaping.limit_rows(
                plan, self._build(plan.child, counters), counters)
        if isinstance(plan, _EmptySourcePlan):
            return iter([()])
        raise ExecutionError(f"no executor for plan node {plan!r}")
