"""Scan operators: sequential, B-Tree keyed and secondary-index scans."""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.errors import ExecutionError
from repro.execution.evaluator import compile_predicate
from repro.optimizer.plans import (
    BTreeScanPlan,
    HashScanPlan,
    IndexScanPlan,
    KeyCondition,
    SeqScanPlan,
)
from repro.storage.btree import BTreeStorage
from repro.storage.table_storage import TableStorage


class StorageCatalog(Protocol):
    """What the executor needs from the engine's database object."""

    def storage_for(self, table_name: str) -> TableStorage: ...

    def index_storage_for(self, index_name: str) -> BTreeStorage: ...

    def virtual_rows(self, table_name: str) -> list[tuple]: ...

    def is_virtual_table(self, table_name: str) -> bool: ...


class Counters:
    """Shared per-query work counter (tuples processed)."""

    __slots__ = ("tuples",)

    def __init__(self) -> None:
        self.tuples = 0


def key_bounds(conditions: tuple[KeyCondition, ...]) -> tuple[
        tuple | None, tuple | None, bool, bool]:
    """Convert matched key conditions into scan-range bounds.

    Conditions arrive in key order: equalities on leading columns, then
    up to two range bounds on the following column.
    """
    equals: list[Any] = []
    lo_value = hi_value = None
    lo_inclusive = hi_inclusive = True
    for condition in conditions:
        if condition.op == "=":
            equals.append(condition.value)
        elif condition.op in (">", ">="):
            lo_value = condition.value
            lo_inclusive = condition.op == ">="
        elif condition.op in ("<", "<="):
            hi_value = condition.value
            hi_inclusive = condition.op == "<="
        else:
            raise ExecutionError(f"unsupported key condition {condition!r}")
    prefix = tuple(equals)
    if lo_value is None and hi_value is None:
        if not prefix:
            return None, None, True, True
        return prefix, prefix, True, True
    lo = prefix + (lo_value,) if lo_value is not None else (prefix or None)
    hi = prefix + (hi_value,) if hi_value is not None else (prefix or None)
    return lo, hi, lo_inclusive, hi_inclusive


def seq_scan(plan: SeqScanPlan, catalog: StorageCatalog,
             counters: Counters) -> Iterator[tuple]:
    predicate = compile_predicate(plan.filter_expr, plan.scope)
    if catalog.is_virtual_table(plan.table_name):
        source: Iterator[tuple] = iter(catalog.virtual_rows(plan.table_name))
        for row in source:
            counters.tuples += 1
            if predicate(row):
                yield row
        return
    storage = catalog.storage_for(plan.table_name)
    for _rowid, row in storage.scan():
        counters.tuples += 1
        if predicate(row):
            yield row


def btree_scan(plan: BTreeScanPlan, catalog: StorageCatalog,
               counters: Counters) -> Iterator[tuple]:
    storage = catalog.storage_for(plan.table_name)
    tree = storage.btree
    predicate = compile_predicate(plan.filter_expr, plan.scope)
    lo, hi, lo_inc, hi_inc = key_bounds(plan.key_conditions)
    for _rowid, row in tree.scan_range(lo, hi, lo_inc, hi_inc):
        counters.tuples += 1
        if predicate(row):
            yield row


def hash_scan(plan: HashScanPlan, catalog: StorageCatalog,
              counters: Counters) -> Iterator[tuple]:
    """Full-key equality probe into a HASH-structured table."""
    storage = catalog.storage_for(plan.table_name)
    predicate = compile_predicate(plan.filter_expr, plan.scope)
    key = tuple(condition.value for condition in plan.key_conditions)
    for _rowid, row in storage.hash.seek(key):
        counters.tuples += 1
        if predicate(row):
            yield row


def index_scan(plan: IndexScanPlan, catalog: StorageCatalog,
               counters: Counters) -> Iterator[tuple]:
    if plan.virtual:
        raise ExecutionError(
            f"plan uses virtual index {plan.index_name!r}; virtual indexes "
            f"can be costed but not executed"
        )
    index = catalog.index_storage_for(plan.index_name)
    storage = catalog.storage_for(plan.table_name)
    predicate = compile_predicate(plan.filter_expr, plan.scope)
    lo, hi, lo_inc, hi_inc = key_bounds(plan.key_conditions)
    for _entry_rowid, entry in index.scan_range(lo, hi, lo_inc, hi_inc):
        counters.tuples += 1
        base_row = storage.fetch(entry[-1])
        if predicate(base_row):
            yield base_row
