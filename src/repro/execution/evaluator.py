"""Expression compilation: AST -> Python closures over row tuples.

Expressions are compiled once per query against a *scope* (the ordered
output columns of the input plan) and then evaluated per row, which
keeps the per-tuple overhead low enough for the paper's 1m-statement
throughput test.

NULL semantics follow SQL: comparisons and arithmetic propagate NULL,
AND/OR use three-valued logic, and predicates treat a NULL outcome as
not-satisfied.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError
from repro.optimizer.plans import Scope
from repro.sql import ast_nodes as ast

Row = tuple
Getter = Callable[[Row], Any]


class ScopeIndex:
    """Resolves column references and named expressions to positions."""

    def __init__(self, scope: Scope) -> None:
        self.scope = scope
        self._by_qualified: dict[str, int] = {}
        self._by_name: dict[str, list[int]] = {}
        self._by_text: dict[str, int] = {}
        for pos, (binding, name) in enumerate(scope):
            if binding is None:
                self._by_text.setdefault(name, pos)
                self._by_name.setdefault(name, []).append(pos)
            else:
                self._by_qualified.setdefault(f"{binding}.{name}", pos)
                self._by_name.setdefault(name, []).append(pos)

    def position_of_text(self, text: str) -> int | None:
        return self._by_text.get(text)

    def position_of_ref(self, ref: ast.ColumnRef) -> int:
        if ref.table is not None:
            pos = self._by_qualified.get(f"{ref.table}.{ref.name}")
            if pos is None:
                raise ExecutionError(
                    f"column {ref.table}.{ref.name} is not in scope"
                )
            return pos
        positions = self._by_name.get(ref.name, [])
        if not positions:
            raise ExecutionError(f"column {ref.name!r} is not in scope")
        if len(positions) > 1:
            raise ExecutionError(f"column {ref.name!r} is ambiguous")
        return positions[0]


_LIKE_CACHE: dict[str, re.Pattern[str]] = {}


def like_to_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern into a compiled regex."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        if len(_LIKE_CACHE) < 4096:
            _LIKE_CACHE[pattern] = compiled
    return compiled


_SCALAR_FUNCTIONS: dict[str, Callable[..., Any] | None] = {
    "upper": lambda s: s.upper(),
    "lower": lambda s: s.lower(),
    "length": len,
    "abs": abs,
    "round": round,
    "coalesce": None,  # special-cased: needs lazy NULL handling
    "substr": lambda s, start, count=None: (
        s[start - 1 : start - 1 + count] if count is not None
        else s[start - 1 :]
    ),
}


def compile_expression(expr: ast.Expression, scope: Scope) -> Getter:
    """Compile ``expr`` into a callable evaluating it for one row."""
    return _compile(expr, ScopeIndex(scope))


def compile_predicate(expr: ast.Expression | None, scope: Scope) -> Getter:
    """Compile a boolean predicate; NULL results count as False."""
    if expr is None:
        return lambda row: True
    inner = _compile(expr, ScopeIndex(scope))

    def predicate(row: Row) -> bool:
        return inner(row) is True

    return predicate


def _compile(expr: ast.Expression, index: ScopeIndex) -> Getter:
    # Named sub-expressions first: this is how aggregate outputs and
    # group expressions are referenced above an AggregatePlan.
    text_pos = index.position_of_text(expr.to_sql())
    if text_pos is not None:
        pos = text_pos
        return lambda row: row[pos]
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.ColumnRef):
        pos = index.position_of_ref(expr)
        return lambda row: row[pos]
    if isinstance(expr, ast.UnaryOp):
        return _compile_unary(expr, index)
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, index)
    if isinstance(expr, ast.IsNull):
        operand = _compile(expr.operand, index)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, index)
    if isinstance(expr, ast.Between):
        return _compile_between(expr, index)
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, index)
    if isinstance(expr, ast.Star):
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
    raise ExecutionError(f"cannot compile expression {expr!r}")


def _compile_unary(expr: ast.UnaryOp, index: ScopeIndex) -> Getter:
    operand = _compile(expr.operand, index)
    if expr.op == "-":
        def negate(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise ExecutionError(
                    f"cannot negate non-numeric value {value!r}")
            return -value

        return negate
    if expr.op == "not":
        def negation(row: Row) -> Any:
            value = operand(row)
            if value is None:
                return None
            return not value

        return negation
    raise ExecutionError(f"unknown unary operator {expr.op!r}")


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def _compile_binary(expr: ast.BinaryOp, index: ScopeIndex) -> Getter:
    left = _compile(expr.left, index)
    right = _compile(expr.right, index)
    op = expr.op
    if op == "and":
        def logical_and(row: Row) -> Any:
            a = left(row)
            if a is False:
                return False
            b = right(row)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return logical_and
    if op == "or":
        def logical_or(row: Row) -> Any:
            a = left(row)
            if a is True:
                return True
            b = right(row)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return logical_or
    if op in _COMPARATORS:
        compare = _COMPARATORS[op]

        def comparison(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return compare(a, b)
            except TypeError:
                raise ExecutionError(
                    f"cannot compare {a!r} with {b!r}") from None

        return comparison
    if op in _ARITHMETIC:
        operate = _ARITHMETIC[op]

        def arithmetic(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return operate(a, b)
            except TypeError:
                raise ExecutionError(
                    f"cannot apply {op!r} to {a!r} and {b!r}") from None

        return arithmetic
    if op == "/":
        def divide(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if b == 0:
                raise ExecutionError("division by zero")
            result = a / b
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return a // b
            return result

        return divide
    if op == "%":
        def modulo(row: Row) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if b == 0:
                raise ExecutionError("modulo by zero")
            return a % b

        return modulo
    if op == "like":
        def like(row: Row) -> Any:
            value = left(row)
            pattern = right(row)
            if value is None or pattern is None:
                return None
            return like_to_regex(pattern).match(value) is not None

        return like
    raise ExecutionError(f"unknown binary operator {op!r}")


def _compile_in_list(expr: ast.InList, index: ScopeIndex) -> Getter:
    operand = _compile(expr.operand, index)
    items = [_compile(item, index) for item in expr.items]
    negated = expr.negated

    def contains(row: Row) -> Any:
        value = operand(row)
        if value is None:
            return None
        found = False
        saw_null = False
        for item in items:
            candidate = item(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                found = True
                break
        if found:
            return not negated
        if saw_null:
            return None
        return negated

    return contains


def _compile_between(expr: ast.Between, index: ScopeIndex) -> Getter:
    operand = _compile(expr.operand, index)
    low = _compile(expr.low, index)
    high = _compile(expr.high, index)
    negated = expr.negated

    def between(row: Row) -> Any:
        value = operand(row)
        lo = low(row)
        hi = high(row)
        if value is None or lo is None or hi is None:
            return None
        result = lo <= value <= hi
        return (not result) if negated else result

    return between


def _compile_function(expr: ast.FunctionCall, index: ScopeIndex) -> Getter:
    if expr.is_aggregate:
        raise ExecutionError(
            f"aggregate {expr.name}() used outside an aggregation context"
        )
    name = expr.name
    args = [_compile(arg, index) for arg in expr.args]
    if name == "coalesce":
        def coalesce(row: Row) -> Any:
            for arg in args:
                value = arg(row)
                if value is not None:
                    return value
            return None

        return coalesce
    function = _SCALAR_FUNCTIONS.get(name)
    if function is None:
        raise ExecutionError(f"unknown function {name!r}")

    def call(row: Row) -> Any:
        values = [arg(row) for arg in args]
        if any(value is None for value in values):
            return None
        try:
            return function(*values)
        except TypeError as exc:
            raise ExecutionError(f"{name}(): {exc}") from None

    return call


def sort_key(values: Sequence[Any]) -> tuple:
    """A total-order key over possibly-NULL heterogeneous values
    (NULLs first, as in the B-Tree)."""
    return tuple((0,) if v is None else (1, v) for v in values)
