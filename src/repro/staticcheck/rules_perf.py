"""PRF — hot-path performance discipline.

The figure-4 monitoring overhead is a per-statement *constant*: every
object allocated, attribute chain re-walked, string formatted or clock
read on the sensor path is paid once per statement, a million times in
the 1m test.  These five interprocedural rules police that constant
inside every function the hot-path propagation
(:mod:`repro.staticcheck.hotpath`) reaches from a
``# staticcheck: hotpath`` root:

* **PRF001** — per-call allocation (dict/list/set displays,
  comprehensions, lambdas, container constructors, project-class
  constructions, slice copies).  Tuples, empty displays and generator
  expressions are exempt (cheap or lazily evaluated).  Waivable with
  ``allocfree(<witness>)`` when the allocation *is* the product
  (``allocfree(workload-record-is-the-product)``).
* **PRF002** — an attribute/global chain re-walked on every iteration
  of a hot loop (``self.workload_db.append`` inside ``for row in
  rows``); bind it to a local before the loop.
* **PRF003** — f-string / ``str.format`` / ``%`` / logging work on the
  hot path without a level or debug guard.  Error paths (``raise``,
  ``except`` bodies) are exempt — they are off the per-call path.
* **PRF004** — a wall-clock read per row instead of batched/deferred:
  ``monitor.clock.now()`` inside a hot function.  Capturing once onto
  the per-statement context (``ctx.wall_time = clock.now()``) is the
  sanctioned deferral shape and is exempt.
* **PRF005** — allocation or formatting performed *while holding an
  engine lock* in a hot function (reuses lockflow's held-lock sets):
  the cost is not just paid per call, it lengthens every contender's
  critical section.

All five attach hotness provenance: ``hot_root`` names the annotated
root, the trace is the call chain that makes the line hot.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterable, Iterator

from repro.staticcheck.astutil import ancestors, dotted_segments
from repro.staticcheck.base import ProjectRule, register_deep
from repro.staticcheck.callgraph import CallEdge, FunctionDecl
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.hotpath import hotpaths_for
from repro.staticcheck.lockflow import DeepContext

_BUILTIN_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "frozenset", "bytearray",
})
_EXTERNAL_CONTAINER_CTORS = frozenset({
    "collections.OrderedDict", "collections.defaultdict",
    "collections.deque", "collections.Counter",
})
_LOGGING_HEADS = frozenset({"logging", "logger", "log"})


# -- shared walking helpers --------------------------------------------------


def _own_nodes(decl: FunctionDecl) -> Iterator[ast.AST]:
    """Nodes of the function body, excluding nested def/class/lambda
    bodies — those execute on their own schedule (the lambda *object*
    is still seen by the caller's walk, so PRF001 flags its creation).

    Starts at the body, not the def node, so parameter annotations,
    return annotations and defaults are never walked: annotations are
    types (``Callable[[T], T]`` is not a per-call list allocation) and
    defaults evaluate at definition time.
    """
    stack: list[ast.AST] = list(decl.node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.AnnAssign):
            stack.append(node.target)
            if node.value is not None:
                stack.append(node.value)
            continue
        stack.extend(ast.iter_child_nodes(node))


def _waived(decl: FunctionDecl, line: int) -> bool:
    """A witnessed ``allocfree`` on the line or the line above it.  A
    bare ``allocfree()`` waives nothing — the witness is the review
    artifact."""
    for candidate in (line, line - 1):
        for directive in decl.module.directives(candidate, "allocfree"):
            if directive.args:
                return True
    return False


def _on_error_path(node: ast.AST, decl: FunctionDecl) -> bool:
    """Inside a ``raise`` or an ``except`` body: error paths run at
    failure frequency, not statement frequency."""
    if isinstance(node, ast.Raise):
        return True
    for ancestor in ancestors(node, decl.module.parents):
        if isinstance(ancestor, (ast.Raise, ast.ExceptHandler)):
            return True
        if ancestor is decl.node:
            break
    return False


def _held_tokens(deep: DeepContext, decl: FunctionDecl,
                 node: ast.AST) -> frozenset[str]:
    """Lock tokens held at ``node``: the function's guaranteed entry
    locks plus any lexical ``with self._lock:`` region containing it."""
    held = set(deep.lockflow.entry_locks.get(decl.qualname, frozenset()))
    parents = decl.module.parents
    for region in deep.lockflow.regions.get(decl.qualname, ()):
        if region.node is node or any(
                ancestor is region.node
                for ancestor in ancestors(node, parents)):
            held.add(region.site.token)
    return frozenset(held)


def _edges_by_node(deep: DeepContext,
                   qualname: str) -> dict[int, CallEdge]:
    return {id(edge.node): edge
            for edge in deep.project.calls_from(qualname)}


def _allocation(node: ast.AST, deep: DeepContext, decl: FunctionDecl,
                edges: dict[int, CallEdge]) -> str | None:
    """Describe the per-call allocation ``node`` performs, if any."""
    if isinstance(node, ast.Dict) and node.keys:
        return "dict display"
    if isinstance(node, ast.List) and node.elts:
        return "list display"
    if isinstance(node, ast.Set):
        return "set display"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.Lambda):
        return "lambda (one closure object per call)"
    if (isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Slice)
            and isinstance(node.ctx, ast.Load)):
        return "sequence copy via slice"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and \
                node.func.id in _BUILTIN_CONTAINER_CTORS:
            return f"{node.func.id}() construction"
        edge = edges.get(id(node))
        if edge is None:
            return None
        if edge.external:
            if edge.callee in _EXTERNAL_CONTAINER_CTORS:
                return f"{edge.callee}() construction"
            return None
        callee = edge.callee
        if callee.endswith(".__init__"):
            return f"constructs {callee.rsplit('.', 2)[-2]}"
        if callee in deep.project.classes:
            return f"constructs {callee.rsplit('.', 1)[-1]}"
    return None


def _formatting(node: ast.AST) -> str | None:
    """Describe the string-building work ``node`` performs, if any."""
    if isinstance(node, ast.JoinedStr):
        if any(isinstance(part, ast.FormattedValue)
               for part in node.values):
            return "f-string formatting"
        return None
    if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod)
            and isinstance(node.left, (ast.Constant, ast.JoinedStr))
            and isinstance(getattr(node.left, "value", ""), str)):
        return "%-formatting"
    if isinstance(node, ast.Call):
        segments = dotted_segments(node.func)
        if segments is None:
            return None
        if segments[-1] == "format" and len(segments) >= 2:
            return "str.format() call"
        if segments[0] in _LOGGING_HEADS or "logger" in segments[:-1]:
            return f"logging call {'.'.join(segments)}()"
    return None


def _guarded_by_level_check(node: ast.AST, decl: FunctionDecl,
                            config: StaticcheckConfig) -> bool:
    """An enclosing ``if`` whose test mentions a debug/level/enabled
    name keeps the formatting off the production hot path."""
    fragments = tuple(f.lower() for f in config.hotpath_guard_names)
    for ancestor in ancestors(node, decl.module.parents):
        if ancestor is decl.node:
            break
        if not isinstance(ancestor, ast.If):
            continue
        for probe in ast.walk(ancestor.test):
            name: str | None = None
            if isinstance(probe, ast.Name):
                name = probe.id
            elif isinstance(probe, ast.Attribute):
                name = probe.attr
            if name is not None and any(
                    fragment in name.lower() for fragment in fragments):
                return True
    return False


class _PerfRule(ProjectRule):
    """Shared scoping: iterate hot functions inside the PRF scope."""

    default_severity = Severity.ERROR

    def _hot_functions(self, deep: DeepContext, config: StaticcheckConfig,
                       ) -> Iterator[tuple[FunctionDecl,
                                           tuple[TraceEntry, ...]]]:
        hot = hotpaths_for(deep)
        for qualname in sorted(hot.hot):
            decl = deep.project.functions[qualname]
            if decl.name == "__init__":
                continue  # construction cost is flagged at the call site
            if config.path_matches(decl.module.path,
                                   config.hotpath_scope_paths):
                yield decl, hot.hot[qualname]

    def _finding(self, decl: FunctionDecl, node: ast.AST,
                 message: str,
                 provenance: tuple[TraceEntry, ...]) -> Finding:
        return Finding(
            path=decl.module.path,
            line=getattr(node, "lineno", decl.node.lineno),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.default_severity,
            message=message,
            trace=provenance,
            hot_root=provenance[0].function if provenance else None,
        )


@register_deep
class HotPathAllocationRule(_PerfRule):
    """PRF001 — per-call allocation on the hot path."""

    rule_id = "PRF001"
    summary = ("no per-call object/dict/list allocation in a hot path; "
               "reuse, hoist, or waive with allocfree(<witness>)")
    waiver = ("allocfree(<witness>) on the line, naming why the allocation"
              " is amortized or unavoidable")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for decl, provenance in self._hot_functions(deep, config):
            edges = _edges_by_node(deep, decl.qualname)
            for node in _own_nodes(decl):
                described = _allocation(node, deep, decl, edges)
                if described is None:
                    continue
                if _held_tokens(deep, decl, node):
                    continue  # PRF005 owns allocations under a lock
                line = getattr(node, "lineno", decl.node.lineno)
                if _waived(decl, line) or _on_error_path(node, decl):
                    continue
                yield self._finding(
                    decl, node,
                    f"per-call {described} in hot function "
                    f"{decl.qualname}; hoist it, reuse a scratch "
                    f"object, or waive with allocfree(<witness>)",
                    provenance)


@register_deep
class HotLoopLookupRule(_PerfRule):
    """PRF002 — repeated attribute/global lookups in hot loops."""

    rule_id = "PRF002"
    summary = ("no repeated attribute-chain lookups inside hot loops; "
               "bind the chain to a local before the loop")
    waiver = ("allocfree(<witness>) on the loop, or bind the chain to a"
              " local before it")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for decl, provenance in self._hot_functions(deep, config):
            reported: set[tuple[str, int]] = set()
            for node in _own_nodes(decl):
                if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                yield from self._check_loop(decl, node, provenance,
                                            reported)

    def _check_loop(self, decl: FunctionDecl, loop: ast.AST,
                    provenance: tuple[TraceEntry, ...],
                    reported: set[tuple[str, int]],
                    ) -> Iterator[Finding]:
        rebound = self._rebound_names(loop)
        occurrences: dict[str, list[ast.Attribute]] = {}
        parents = decl.module.parents
        for node in ast.walk(loop):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue  # not the maximal chain
            segments = dotted_segments(node)
            if segments is None or len(segments) < 2:
                continue
            if segments[0] in rebound:
                continue  # base changes every iteration; nothing to hoist
            if _on_error_path(node, decl):
                continue  # raise-message lookups run at failure frequency
            occurrences.setdefault(".".join(segments), []).append(node)
        for chain, nodes in occurrences.items():
            depth = chain.count(".") + 1
            if depth < 3 and len(nodes) < 2:
                continue
            first = min(nodes, key=lambda n: (n.lineno, n.col_offset))
            key = (chain, first.lineno)
            if key in reported:
                continue
            reported.add(key)
            if _waived(decl, first.lineno):
                continue
            times = (f"{len(nodes)} times per iteration"
                     if len(nodes) > 1 else "every iteration")
            yield self._finding(
                decl, first,
                f"hot loop re-walks {chain} {times}; bind it to a "
                f"local before the loop",
                provenance)

    @staticmethod
    def _rebound_names(loop: ast.AST) -> set[str]:
        """Names assigned inside the loop (including its targets)."""
        rebound: set[str] = set()
        for node in ast.walk(loop):
            if isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)):
                rebound.add(node.id)
        return rebound


@register_deep
class HotPathFormattingRule(_PerfRule):
    """PRF003 — unguarded string-building work on the hot path."""

    rule_id = "PRF003"
    summary = ("no f-string/logging/str-format work in hot paths "
               "unless guarded by a level check or on an error path")
    waiver = ("guard with a level check, move to an error path, or"
              " allocfree(<witness>)")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for decl, provenance in self._hot_functions(deep, config):
            for node in _own_nodes(decl):
                described = _formatting(node)
                if described is None:
                    continue
                if _held_tokens(deep, decl, node):
                    continue  # PRF005 owns formatting under a lock
                line = getattr(node, "lineno", decl.node.lineno)
                if _waived(decl, line) or _on_error_path(node, decl):
                    continue
                if _guarded_by_level_check(node, decl, config):
                    continue
                yield self._finding(
                    decl, node,
                    f"{described} in hot function {decl.qualname} "
                    f"without a level/debug guard; precompute it, "
                    f"guard it, or waive with allocfree(<witness>)",
                    provenance)


@register_deep
class HotPathClockReadRule(_PerfRule):
    """PRF004 — per-row wall-clock reads instead of batched/deferred."""

    rule_id = "PRF004"
    summary = ("no per-row wall-clock reads in hot paths; capture the "
               "timestamp once per statement and reuse it")
    waiver = ("allocfree(<witness>) naming the batching that makes the"
              " read per-statement, not per-row")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for decl, provenance in self._hot_functions(deep, config):
            for node in _own_nodes(decl):
                if not isinstance(node, ast.Call):
                    continue
                chain = self._wallclock_chain(node, config)
                if chain is None:
                    continue
                if _waived(decl, node.lineno) or \
                        _on_error_path(node, decl):
                    continue
                if self._captured_to_context(node, decl):
                    continue
                yield self._finding(
                    decl, node,
                    f"wall-clock read {chain}() on the hot path in "
                    f"{decl.qualname}; capture the timestamp once on "
                    f"the statement context and reuse it (deferred "
                    f"timestamping), or waive with allocfree(<witness>)",
                    provenance)

    @staticmethod
    def _wallclock_chain(node: ast.Call,
                         config: StaticcheckConfig) -> str | None:
        segments = dotted_segments(node.func)
        if segments is None:
            return None
        chain = ".".join(segments)
        for pattern in config.hotpath_wallclock_patterns:
            if fnmatch(chain, pattern):
                return chain
        return None

    @staticmethod
    def _captured_to_context(node: ast.Call,
                             decl: FunctionDecl) -> bool:
        """``ctx.wall_time = clock.now()`` — the sanctioned deferral:
        one read, stored on the per-statement context for everyone
        downstream to reuse."""
        parent = decl.module.parents.get(node)
        if not isinstance(parent, ast.Assign) or parent.value is not node:
            return False
        return all(
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            for target in parent.targets
        )


@register_deep
class HotLockWorkRule(_PerfRule):
    """PRF005 — allocation/formatting inside a held engine lock."""

    rule_id = "PRF005"
    summary = ("no allocation or formatting work while holding an "
               "engine lock in a hot path; shrink the critical section")
    waiver = ("allocfree(<witness>) on the line, or shrink the critical"
              " section")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for decl, provenance in self._hot_functions(deep, config):
            edges = _edges_by_node(deep, decl.qualname)
            for node in _own_nodes(decl):
                described = (_allocation(node, deep, decl, edges)
                             or _formatting(node))
                if described is None:
                    continue
                held = _held_tokens(deep, decl, node)
                if not held:
                    continue
                line = getattr(node, "lineno", decl.node.lineno)
                if _waived(decl, line) or _on_error_path(node, decl):
                    continue
                tokens = ", ".join(sorted(held))
                yield self._finding(
                    decl, node,
                    f"{described} while holding {tokens} in hot "
                    f"function {decl.qualname}; move it outside the "
                    f"critical section or waive with "
                    f"allocfree(<witness>)",
                    provenance)
