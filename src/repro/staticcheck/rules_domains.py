"""DOM rules: integer-domain safety for shard/sequence/session ids.

Built on the interprocedural domain dataflow of
:mod:`repro.staticcheck.domains`.  All four rules report only inside
``domain_scope_paths`` (the sharding / daemon / workload-DB / driver
modules whose ints carry the merged encoding); the *inference* is
whole-program, so adopting the rules module-by-module does not require
the whole tree to be domain-clean at once.

DOM001–DOM003 accept the evidenced ``mixeddomain(<witness>)`` waiver
on the reported line (or the line above): the witness names why the
mixing is sound — ``mixeddomain(whole-table-inspection-only)`` for a
deliberate cross-shard scalar max that never feeds recovery,
``mixeddomain(shards-share-one-clock)`` for a comparison that is
ordered by construction.  A bare ``mixeddomain()`` waives nothing.
DOM004 (declared-vs-inferred drift) has no waiver: a wrong
declaration is fixed by correcting or deleting it, exactly like
OWN003.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.staticcheck.base import ProjectRule, register_deep
from repro.staticcheck.domains import DomainSite, domains_for
from repro.staticcheck.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.config import StaticcheckConfig
    from repro.staticcheck.lockflow import DeepContext

_WAIVER = ("mixeddomain(<witness>) on the reported line — the witness "
           "names why the domains may meet (the argument is "
           "mandatory: a bare mixeddomain() waives nothing)")


class _DomainRuleBase(ProjectRule):
    """Shared site filtering: scope, waivers, finding construction."""

    kinds: frozenset[str] = frozenset()
    waivable: bool = True

    def _sites(self, deep: "DeepContext",
               config: "StaticcheckConfig") -> Iterator[DomainSite]:
        result = domains_for(deep, config)
        for site in result.sites:
            if site.kind not in self.kinds:
                continue
            if not config.path_matches(site.path,
                                       config.domain_scope_paths):
                continue
            if self.waivable and _waived(deep, site):
                continue
            yield site


def _waived(deep: "DeepContext", site: DomainSite) -> bool:
    """An evidenced ``mixeddomain(<witness>)`` on the site's line or
    the line above it."""
    module = deep.project.modules.get(site.path)
    if module is None:
        return False
    for line in (site.line, site.line - 1):
        for directive in module.directives(line, "mixeddomain"):
            if directive.args:
                return True
    return False


@register_deep
class CrossDomainMixRule(_DomainRuleBase):
    """DOM001: comparing, ordering or combining ints of different
    domains."""

    rule_id = "DOM001"
    summary = ("cross-domain integer comparison/arithmetic, or scalar "
               "ordering of encoded seqs without a per-shard anchor")
    waiver = _WAIVER
    kinds = frozenset({"compare", "arith", "order"})

    def check_project(self, deep: "DeepContext",
                      config: "StaticcheckConfig") -> Iterable[Finding]:
        for site in self._sites(deep, config):
            if site.kind == "order":
                message = (
                    f"{site.note} in {site.function} — merged seqs "
                    f"are not time-ordered across shards, so a scalar "
                    f"high-water over them is unsound; compare per "
                    f"shard (index by shard_of_seq first) or use the "
                    f"merge helpers, or waive with "
                    f"mixeddomain(<witness>)")
            else:
                message = (
                    f"{site.note} in {site.function} — both are "
                    f"ints but mean different things, so the result "
                    f"is meaningless; convert explicitly "
                    f"(encode_seq/decode_seq/shard_of_seq or "
                    f"% shard_count) or waive with "
                    f"mixeddomain(<witness>)")
            yield self.finding(site.path, site.line, site.column,
                               message, trace=site.trace)


@register_deep
class LocalSeqEscapeRule(_DomainRuleBase):
    """DOM002: a shard-local value flowing into an encoded-domain
    parameter."""

    rule_id = "DOM002"
    summary = ("local/unencoded value passed where an encoded "
               "src_seq/encoded_seq parameter is expected")
    waiver = _WAIVER
    kinds = frozenset({"argflow"})

    def check_project(self, deep: "DeepContext",
                      config: "StaticcheckConfig") -> Iterable[Finding]:
        for site in self._sites(deep, config):
            yield self.finding(
                site.path, site.line, site.column,
                f"{site.note} (call in {site.function}) — persisting "
                f"or publishing the wrong domain corrupts crash "
                f"recovery and shard attribution; encode first "
                f"(encode_seq(local_seq, shard_id)) or waive with "
                f"mixeddomain(<witness>)", trace=site.trace)


@register_deep
class ShardIndexRule(_DomainRuleBase):
    """DOM003: indexing a per-shard structure with a raw id."""

    rule_id = "DOM003"
    summary = ("per-shard structure indexed by a session/seq-domain "
               "int — a missing % shard_count")
    waiver = _WAIVER
    kinds = frozenset({"index"})

    def check_project(self, deep: "DeepContext",
                      config: "StaticcheckConfig") -> Iterable[Finding]:
        for site in self._sites(deep, config):
            yield self.finding(
                site.path, site.line, site.column,
                f"{site.note} in {site.function} — a raw "
                f"{site.left} overruns or misroutes the per-shard "
                f"table; reduce it first (session_id % shard_count, "
                f"or shard_of_seq for encoded seqs) or waive with "
                f"mixeddomain(<witness>)", trace=site.trace)


@register_deep
class DomainDriftRule(_DomainRuleBase):
    """DOM004: a ``domain(...)`` declaration the inference
    contradicts."""

    rule_id = "DOM004"
    summary = ("declared domain(...) contradicted by the inferred "
               "domain, or naming no known domain")
    waiver = ""
    kinds = frozenset({"drift", "directive"})
    waivable = False

    def check_project(self, deep: "DeepContext",
                      config: "StaticcheckConfig") -> Iterable[Finding]:
        for site in self._sites(deep, config):
            yield self.finding(
                site.path, site.line, site.column,
                f"{site.note} — a wrong declaration poisons every "
                f"downstream inference; fix the declaration or the "
                f"code it describes", trace=site.trace)
