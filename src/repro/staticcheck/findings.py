"""The finding/severity model shared by all rules and reporters.

Intra-procedural rules report a bare location; the interprocedural
(deep) rules additionally attach a ``trace`` — the chain of lock
acquisitions and call sites that makes the finding reachable — so a
report line like "blocking call under self._lock" always comes with
the evidence path a reviewer needs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is; any finding fails the lint gate."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class TraceEntry:
    """One step of an interprocedural evidence chain."""

    path: str
    """File the step happens in."""

    line: int
    """1-based line of the step."""

    function: str
    """Qualified name of the function the step belongs to."""

    note: str
    """What the step is: ``acquires self._lock``, ``calls f()``, ..."""

    def render(self) -> str:
        return f"{self.path}:{self.line}: in {self.function}: {self.note}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "function": self.function,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "TraceEntry":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            function=str(data["function"]),
            note=str(data["note"]),
        )


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    """Path of the offending file, as given to the analyzer."""

    line: int
    """1-based line of the offending node."""

    column: int
    """0-based column of the offending node."""

    rule_id: str
    """Stable identifier, e.g. ``LCK001``."""

    severity: Severity
    message: str

    trace: tuple[TraceEntry, ...] = field(default=())
    """Interprocedural evidence chain (empty for per-module rules)."""

    hot_root: str | None = None
    """Hotness provenance (PRF rules, JSON schema v4): the qualname of
    the ``hotpath`` root whose propagation made the reported line hot;
    the ``trace`` holds the call chain from that root."""

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def render(self) -> str:
        """``path:line:col: RULE severity: message`` plus, for deep
        findings, one indented line per trace step."""
        head = (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} {self.severity}: {self.message}")
        if not self.trace:
            return head
        steps = "\n".join(
            f"    {i}. {entry.render()}"
            for i, entry in enumerate(self.trace, start=1)
        )
        return f"{head}\n{steps}"

    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "trace": [entry.to_dict() for entry in self.trace],
        }
        if self.hot_root is not None:
            payload["hot_root"] = self.hot_root
        return payload

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        raw_trace = data.get("trace", [])
        if not isinstance(raw_trace, list):
            raise ValueError("finding trace must be a list")
        hot_root = data.get("hot_root")
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            rule_id=str(data["rule_id"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
            trace=tuple(TraceEntry.from_dict(entry) for entry in raw_trace),
            hot_root=str(hot_root) if hot_root is not None else None,
        )
