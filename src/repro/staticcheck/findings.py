"""The finding/severity model shared by all rules and reporters."""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass


class Severity(enum.Enum):
    """How bad a finding is; any finding fails the lint gate."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    """Path of the offending file, as given to the analyzer."""

    line: int
    """1-based line of the offending node."""

    column: int
    """0-based column of the offending node."""

    rule_id: str
    """Stable identifier, e.g. ``LCK001``."""

    severity: Severity
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)

    def render(self) -> str:
        """``path:line:col: RULE severity: message`` (one line)."""
        return (f"{self.path}:{self.line}:{self.column}: "
                f"{self.rule_id} {self.severity}: {self.message}")

    def to_dict(self) -> dict[str, object]:
        data = asdict(self)
        data["severity"] = self.severity.value
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            column=int(data["column"]),  # type: ignore[arg-type]
            rule_id=str(data["rule_id"]),
            severity=Severity(data["severity"]),
            message=str(data["message"]),
        )
