"""Interprocedural held-lock propagation over the call graph.

A *lock token* identifies one lock object: ``<ClassQualname>.<attr>``
for instance locks (``repro.core.daemon.StorageDaemon._lock``) or
``<module>.<name>`` for module-level locks.  A ``threading.Condition``
wrapping a ``Lock`` shares the wrapped lock's token, so the
Condition-around-a-Lock idiom counts as one lock, not two.

Starting from every ``with self.<lock>:`` region (and every
``# staticcheck: guarded-by(<lock>)`` method, whose whole body runs
under the lock), the analysis walks the call graph recording

* **order edges** — lock B acquired while lock A is held, with the
  acquisition-site/call-chain trace that proves it (LCK003's
  acquisition-order graph), and
* **blocking chains** — a call resolving to a blocking primitive
  (``time.sleep``, socket/file I/O, SQL execution through the engine,
  ``queue.get`` without timeout) reachable while the lock is held
  (LCK004's evidence).

``Condition.wait`` is exempt — it releases the lock it waits on.
Recursion is bounded per (function, held lock) pair, so lock-free
call cycles cannot loop the walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.dataflow import AttrFlow
    from repro.staticcheck.domains import DomainResult
    from repro.staticcheck.hotpath import HotPathResult
    from repro.staticcheck.ownership import OwnershipResult

from repro.staticcheck.astutil import ancestors, dotted_segments, self_attribute
from repro.staticcheck.callgraph import (
    CallEdge,
    ClassDecl,
    FunctionDecl,
    ProjectContext,
    _external_dotted,
    module_name_for,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import TraceEntry

LOCK_TYPES = frozenset({
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
})

_MAX_DEPTH = 12


@dataclass(frozen=True)
class LockSite:
    """Where a lock token is acquired (or assumed held)."""

    token: str
    path: str
    line: int
    column: int
    function: str
    note: str

    def trace_entry(self) -> TraceEntry:
        return TraceEntry(path=self.path, line=self.line,
                          function=self.function, note=self.note)


@dataclass
class Region:
    """A lexical scope that runs with one lock held."""

    site: LockSite
    node: ast.AST
    """The ``with`` statement, or the function node for guarded-by."""
    function: FunctionDecl


@dataclass(frozen=True)
class OrderEdge:
    """Lock ``held`` is held while ``acquired`` is acquired."""

    held: str
    acquired: str
    trace: tuple[TraceEntry, ...]


@dataclass(frozen=True)
class BlockingChain:
    """A blocking call reachable with ``token`` held."""

    token: str
    path: str
    line: int
    column: int
    function: str
    callee: str
    trace: tuple[TraceEntry, ...]


@dataclass
class LockFlowResult:
    """What the propagation found, consumed by LCK003/LCK004 and by
    the attribute dataflow layer (:mod:`repro.staticcheck.dataflow`)."""

    order_edges: list[OrderEdge] = field(default_factory=list)
    blocking: list[BlockingChain] = field(default_factory=list)
    regions: dict[str, list[Region]] = field(default_factory=dict)
    """Function qualname -> its lock-holding lexical regions."""
    entry_locks: dict[str, frozenset[str]] = field(default_factory=dict)
    """Function qualname -> lock tokens held at entry on *every*
    resolved call path into it (the meet over all call sites).  A
    function with no project-internal caller gets the empty set — it
    may be a thread entry point or a public API called lock-free."""


@dataclass
class DeepContext:
    """Bundle handed to every deep rule."""

    project: ProjectContext
    lockflow: LockFlowResult
    attr_flows: "AttrFlow | None" = None
    """Lazily computed by the ATM/PUB rules via
    :func:`repro.staticcheck.dataflow.attr_flows_for` so the
    field-sensitive pass runs once per project, not once per rule."""

    hotpaths: "HotPathResult | None" = None
    """Lazily computed by the PRF rules via
    :func:`repro.staticcheck.hotpath.hotpaths_for` — one propagation
    per project, shared by all five performance rules."""

    ownership: "OwnershipResult | None" = None
    """Lazily computed by the OWN rules (and the ``--ownership-map``
    export) via :func:`repro.staticcheck.ownership.ownership_for` —
    one thread-role propagation and field classification per project."""

    domains: "DomainResult | None" = None
    """Lazily computed by the DOM rules (and the ``--domain-map``
    export) via :func:`repro.staticcheck.domains.domains_for` — one
    integer-domain propagation per project, shared by all four
    domain rules."""


def lock_attrs_of(project: ProjectContext,
                  decl: ClassDecl) -> dict[str, str]:
    """Lock attributes of a class, mapped to their canonical name
    (Condition attrs map to the Lock they wrap)."""
    locks: dict[str, str] = {}
    for attr, attr_type in decl.attr_types.items():
        if attr_type in LOCK_TYPES:
            canonical = decl.condition_wraps.get(attr, attr)
            locks[attr] = canonical
    # shared(...) annotations may name locks the inference missed.
    for directives in decl.module.annotations.values():
        for directive in directives:
            if directive.name in ("shared", "guarded-by"):
                for lock in directive.args:
                    if _class_assigns(decl, lock):
                        locks.setdefault(lock,
                                         decl.condition_wraps.get(lock, lock))
    return locks


def _class_assigns(decl: ClassDecl, attr: str) -> bool:
    for node in ast.walk(decl.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == attr):
                return True
    return False


def module_locks_of(project: ProjectContext,
                    path: str) -> dict[str, str]:
    """Module-level lock names -> tokens (``with _txn_ids_lock:``)."""
    module = project.modules[path]
    modname = module_name_for(path)
    locks: dict[str, str] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        segments = dotted_segments(node.value.func)
        if segments is None:
            continue
        resolved = _external_dotted(module, segments)
        if resolved in LOCK_TYPES:
            locks[target.id] = f"{modname}.{target.id}"
    return locks


class LockFlow:
    """Runs the held-lock propagation over a built project."""

    def __init__(self, project: ProjectContext,
                 config: StaticcheckConfig) -> None:
        self.project = project
        self.config = config
        self._class_locks: dict[str, dict[str, str]] = {}
        self._module_locks: dict[str, dict[str, str]] = {}
        for qualname, decl in project.classes.items():
            self._class_locks[qualname] = lock_attrs_of(project, decl)
        for path in project.modules:
            self._module_locks[path] = module_locks_of(project, path)
        self._regions: dict[str, list[Region]] = {}
        for fq, decl in project.functions.items():
            self._regions[fq] = self._function_regions(decl)
        self.result = LockFlowResult()
        self._seen_blocking: set[tuple[str, int, int, str]] = set()
        self._seen_edges: set[tuple[str, str]] = set()

    # -- region discovery ---------------------------------------------------

    def _lock_token_for_item(self, decl: FunctionDecl,
                             expr: ast.expr) -> str | None:
        """Token for a ``with <expr>:`` context manager, if it is a
        known lock."""
        attr = self_attribute(expr)
        if attr is not None and decl.class_qualname is not None:
            class_locks = self._class_locks.get(decl.class_qualname, {})
            canonical = class_locks.get(attr)
            if canonical is not None:
                return f"{decl.class_qualname}.{canonical}"
            return None
        if isinstance(expr, ast.Name):
            return self._module_locks.get(decl.module.path,
                                          {}).get(expr.id)
        return None

    def _function_regions(self, decl: FunctionDecl) -> list[Region]:
        regions: list[Region] = []
        fq = decl.qualname
        for node in ast.walk(decl.node):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if self._enclosing_decl(node, decl) is not decl.node:
                continue  # belongs to a nested def
            for item in node.items:
                token = self._lock_token_for_item(decl, item.context_expr)
                if token is None:
                    continue
                site = LockSite(
                    token=token, path=decl.module.path,
                    line=node.lineno, column=node.col_offset,
                    function=fq, note=f"acquires {token}")
                regions.append(Region(site=site, node=node, function=decl))
        directive = decl.module.function_directive(decl.node, "guarded-by")
        if directive is not None and decl.class_qualname is not None:
            class_locks = self._class_locks.get(decl.class_qualname, {})
            for lock in directive.args:
                canonical = class_locks.get(lock, lock)
                token = f"{decl.class_qualname}.{canonical}"
                site = LockSite(
                    token=token, path=decl.module.path,
                    line=decl.node.lineno, column=decl.node.col_offset,
                    function=fq,
                    note=f"guarded-by({lock}): callers hold {token}")
                regions.append(Region(site=site, node=decl.node,
                                      function=decl))
        return regions

    def _enclosing_decl(self, node: ast.AST,
                        decl: FunctionDecl) -> ast.AST | None:
        for ancestor in ancestors(node, decl.module.parents):
            if isinstance(ancestor, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                return ancestor
        return None

    def _contains(self, region: Region, node: ast.AST,
                  module_parents: dict[ast.AST, ast.AST]) -> bool:
        if region.node is node:
            return True
        for ancestor in ancestors(node, module_parents):
            if ancestor is region.node:
                return True
        return False

    # -- propagation --------------------------------------------------------

    def tokens_at(self, fq: str, node: ast.AST) -> frozenset[str]:
        """Lock tokens of the regions of ``fq`` lexically containing
        ``node`` (acquisitions visible inside the function itself)."""
        decl = self.project.functions.get(fq)
        if decl is None:
            return frozenset()
        parents = decl.module.parents
        return frozenset(
            region.site.token for region in self._regions.get(fq, ())
            if self._contains(region, node, parents)
        )

    def _propagate_entry_locks(self) -> dict[str, frozenset[str]]:
        """Fixpoint: locks held at a function's entry on every call
        path.  ``entry(f) = ⋂ over internal call sites of
        (entry(caller) ∪ locks lexically held at the site)``; functions
        without internal callers start (and stay) at the empty set.
        ``None`` is the lattice top (no call site seen yet); the
        intersection only ever shrinks, so iteration terminates."""
        incoming: dict[str, list[CallEdge]] = {}
        for fq in self.project.functions:
            for edge in self.project.calls_from(fq):
                if not edge.external and edge.callee in self.project.functions:
                    incoming.setdefault(edge.callee, []).append(edge)
        entry: dict[str, frozenset[str] | None] = {
            fq: (None if fq in incoming else frozenset())
            for fq in self.project.functions
        }
        for _ in range(len(self.project.functions) + 1):
            changed = False
            for callee, edges in incoming.items():
                meet: frozenset[str] | None = None
                for edge in edges:
                    base = entry.get(edge.caller)
                    if base is None:
                        continue  # caller still at top: no constraint yet
                    held = base | self.tokens_at(edge.caller, edge.node)
                    meet = held if meet is None else (meet & held)
                if meet is not None and meet != entry[callee]:
                    entry[callee] = meet
                    changed = True
            if not changed:
                break
        return {fq: (locks if locks is not None else frozenset())
                for fq, locks in entry.items()}

    def analyze(self) -> LockFlowResult:
        self.result.regions = dict(self._regions)
        self.result.entry_locks = self._propagate_entry_locks()
        for fq, regions in self._regions.items():
            decl = self.project.functions[fq]
            parents = decl.module.parents
            for region in regions:
                chain = [region.site.trace_entry()]
                # Nested acquisitions inside the region itself.
                for other in regions:
                    if other is region or other.node is region.node:
                        continue
                    if other.site.token != region.site.token and \
                            self._contains(region, other.node, parents):
                        self._order_edge(region.site.token,
                                         other.site.token,
                                         [*chain, other.site.trace_entry()])
                in_region = [
                    edge for edge in self.project.calls_from(fq)
                    if self._contains(region, edge.node, parents)
                ]
                self._walk(in_region, region.site.token, chain,
                           depth=0, visited=set())
        return self.result

    def _walk(self, edges: list[CallEdge], token: str,
              chain: list[TraceEntry], depth: int,
              visited: set[str]) -> None:
        if depth > _MAX_DEPTH:
            return
        for edge in edges:
            step = TraceEntry(
                path=self.project.functions[edge.caller].module.path,
                line=edge.line,
                function=edge.caller,
                note=f"calls {edge.callee}()")
            if self._is_blocking(edge):
                self._blocking(token, chain, step, edge)
                continue
            if edge.external:
                continue
            callee = self.project.functions.get(edge.callee)
            if callee is None:
                continue
            for region in self._regions.get(edge.callee, ()):
                if region.site.token != token:
                    self._order_edge(
                        token, region.site.token,
                        [*chain, step, region.site.trace_entry()])
            if edge.callee in visited:
                continue
            visited.add(edge.callee)
            self._walk(self.project.calls_from(edge.callee), token,
                       [*chain, step], depth + 1, visited)

    def _order_edge(self, held: str, acquired: str,
                    trace: list[TraceEntry]) -> None:
        if (held, acquired) in self._seen_edges:
            return
        self._seen_edges.add((held, acquired))
        self.result.order_edges.append(OrderEdge(
            held=held, acquired=acquired, trace=tuple(trace)))

    def _blocking(self, token: str, chain: list[TraceEntry],
                  step: TraceEntry, edge: CallEdge) -> None:
        # Anchor at the first call made under the lock: for a direct
        # blocking call that is the call itself; for an interprocedural
        # chain it is the call that leaves the locked function.
        anchor = chain[1] if len(chain) > 1 else step
        key = (anchor.path, anchor.line, edge.column, edge.callee)
        if key in self._seen_blocking:
            return
        self._seen_blocking.add(key)
        column = edge.column if anchor is step else 0
        self.result.blocking.append(BlockingChain(
            token=token,
            path=anchor.path,
            line=anchor.line,
            column=column,
            function=anchor.function,
            callee=edge.callee,
            trace=(*chain, step),
        ))

    # -- blocking-call recognition -----------------------------------------

    def _is_blocking(self, edge: CallEdge) -> bool:
        callee = edge.callee
        for pattern in self.config.blocking_call_patterns:
            if fnmatch(callee, pattern):
                return True
        if fnmatch(callee, "*Queue.get") or callee == "queue.get":
            return not _has_timeout(edge.node)
        if fnmatch(callee, "*.Event.wait"):
            return not _has_timeout(edge.node)
        return False


def _has_timeout(node: ast.Call) -> bool:
    """True when the call passes a positional or ``timeout=`` argument
    (``queue.get(timeout=1)`` / ``event.wait(0.1)`` do not block
    forever)."""
    if node.args:
        return True
    return any(kw.arg == "timeout" for kw in node.keywords)
