"""CLK — clock discipline: one time source for the whole system.

The engine stamps records through :mod:`repro.clock` so that virtual
clocks make daemon/retention behaviour deterministic.  A stray
``time.time()`` anywhere else silently splits the time line in two.

``CLK001``: call of a banned wall-clock primitive (``time.time``,
``time.monotonic``, ``time.sleep``, ``datetime.now`` ...) outside the
allow-listed clock modules.  ``time.perf_counter`` stays legal — it
measures durations only and carries no wall-clock meaning.

``CLK002``: ``from time import time`` style direct import of a banned
primitive, which would hide the call from CLK001's name resolution.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticcheck.astutil import dotted_segments
from repro.staticcheck.base import Rule, register
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity

BANNED_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.sleep",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

BANNED_TIME_IMPORTS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "sleep",
    "localtime", "gmtime",
})


def _resolved_call_name(node: ast.Call,
                        aliases: dict[str, str]) -> str | None:
    """Fully qualified dotted name of the call, with the first segment
    resolved through the module's import aliases; None when the head is
    a local name (``self.clock.now()`` never resolves)."""
    segments = dotted_segments(node.func)
    if not segments:
        return None
    head = aliases.get(segments[0])
    if head is None:
        return None
    return ".".join([head, *segments[1:]])


@register
class WallClockCallRule(Rule):
    """CLK001 — wall-clock primitive called outside clock modules."""

    rule_id = "CLK001"
    summary = ("wall-clock reads/sleeps must go through repro.clock "
               "so virtual clocks stay deterministic")
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        if config.path_matches(module.path, config.clock_allowed_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolved_call_name(node, module.aliases)
            if name in BANNED_CALLS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"direct call of {name}() outside the clock module; "
                    f"take a repro.clock.Clock and use .now() / "
                    f".monotonic() / .sleep() instead",
                )


@register
class WallClockImportRule(Rule):
    """CLK002 — direct import of a banned time primitive."""

    rule_id = "CLK002"
    summary = ("`from time import time/monotonic/sleep` hides wall-"
               "clock calls from review; import the module instead")
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        if config.path_matches(module.path, config.clock_allowed_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ImportFrom) or node.level:
                continue
            if node.module != "time":
                continue
            for name in node.names:
                if name.name in BANNED_TIME_IMPORTS:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"`from time import {name.name}` imports a "
                        f"wall-clock primitive directly; use "
                        f"repro.clock.Clock instead",
                    )
