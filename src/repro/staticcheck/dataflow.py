"""Field-sensitive dataflow over shared attributes.

The lock-discipline rules (LCK001/2) only see attributes a developer
*annotated* as shared.  This layer closes the gap: it derives, per
class, which lock actually guards each attribute — from where the
writes happen — and tracks how attribute values flow through local
variables and ``if``/``while`` tests.  It is built directly on the
``--deep`` phase's call graph and lock flow:

* **Write sites** — every mutation of ``self.<attr>`` outside
  ``__init__``, with the lock tokens *lexically* held there (enclosing
  ``with self.<lock>:`` regions and ``guarded-by`` directives, via
  :class:`~repro.staticcheck.lockflow.LockFlow` regions).
* **Guard inference** — an attribute's guard is the unique lock token
  held at every *locked* write site.  Unlocked writes do not disable
  inference (they are exactly the candidate findings); attributes with
  no locked write have no inferred guard.
* **Held-lock queries** — whether a given site holds a token, counting
  lexical regions *plus* the interprocedural entry-locks fixpoint
  (``LockFlowResult.entry_locks``), so helpers that are only ever
  called under a lock are not flagged.
* **Transitive write closure** — which attributes a method writes
  through ``self.<m>()`` call chains, for check-then-act "act" sites
  that mutate through a helper.

Consumed by the ATM001/ATM002/PUB001 rules in
:mod:`repro.staticcheck.rules_atomic`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.astutil import ancestors, attr_reads, mutated_attr
from repro.staticcheck.callgraph import (
    ClassDecl,
    FunctionDecl,
    ProjectContext,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.lockflow import DeepContext, lock_attrs_of

_MAX_DEPTH = 12


@dataclass
class WriteSite:
    """One mutation of ``self.<attr>`` in a method body."""

    attr: str
    function: str
    """Qualname of the method containing the write."""
    node: ast.AST
    line: int
    column: int
    held: frozenset[str]
    """Lock tokens lexically held at the write."""
    is_rmw: bool
    """Read-modify-write: ``self.n += 1``, ``self.n = f(self.n)``,
    ``self.d[k] = self.d.get(k, ...)`` — a lost update unless the
    whole sequence runs under the guard."""


@dataclass
class ClassAttrFlow:
    """Per-class result of the attribute dataflow."""

    decl: ClassDecl
    guards: dict[str, str] = field(default_factory=dict)
    """attr -> lock token inferred to guard its writes."""
    declared_shared: set[str] = field(default_factory=set)
    """Attrs covered by an explicit ``shared(...)`` annotation (owned
    by LCK001; the ATM rules skip them to avoid double reports)."""
    writes: dict[str, list[WriteSite]] = field(default_factory=dict)


@dataclass
class AttrFlowResult:
    """What :func:`analyze_attr_flows` computed for the program."""

    classes: dict[str, ClassAttrFlow] = field(default_factory=dict)


class AttrFlow:
    """Runs the attribute dataflow over a deep-analyzed project."""

    def __init__(self, deep: DeepContext,
                 config: StaticcheckConfig) -> None:
        self.deep = deep
        self.project = deep.project
        self.config = config
        self.flows = AttrFlowResult()
        self._write_closure: dict[str, set[str]] = {}

    # -- lock queries -------------------------------------------------------

    def lexically_held(self, fq: str, node: ast.AST) -> frozenset[str]:
        """Tokens of regions of ``fq`` containing ``node`` (enclosing
        ``with`` blocks and the guarded-by whole-body region)."""
        decl = self.project.functions.get(fq)
        if decl is None:
            return frozenset()
        parents = decl.module.parents
        held: set[str] = set()
        for region in self.deep.lockflow.regions.get(fq, ()):
            if region.node is node:
                held.add(region.site.token)
                continue
            for ancestor in ancestors(node, parents):
                if ancestor is region.node:
                    held.add(region.site.token)
                    break
        return frozenset(held)

    def held_at(self, fq: str, node: ast.AST) -> frozenset[str]:
        """All tokens known held at ``node``: lexical regions plus the
        locks every resolved caller of ``fq`` holds (entry fixpoint)."""
        entry = self.deep.lockflow.entry_locks.get(fq, frozenset())
        return self.lexically_held(fq, node) | entry

    # -- write collection and guard inference -------------------------------

    def analyze(self) -> AttrFlowResult:
        result = AttrFlowResult()
        for qualname, decl in self.project.classes.items():
            flow = self._class_flow(qualname, decl)
            if flow is not None:
                result.classes[qualname] = flow
        self.flows = result
        return result

    def _class_flow(self, qualname: str,
                    decl: ClassDecl) -> ClassAttrFlow | None:
        lock_tokens = {
            f"{qualname}.{canonical}"
            for canonical in lock_attrs_of(self.project, decl).values()
        }
        if not lock_tokens:
            return None
        flow = ClassAttrFlow(decl=decl)
        flow.declared_shared = _shared_annotated_attrs(decl)
        for method_fq in decl.methods.values():
            method = self.project.functions.get(method_fq)
            if method is None or method.name == "__init__":
                continue
            for site in self._method_writes(method):
                flow.writes.setdefault(site.attr, []).append(site)
        for attr, sites in flow.writes.items():
            guard = _infer_guard(sites, lock_tokens)
            if guard is not None:
                flow.guards[attr] = guard
        return flow

    def _method_writes(self, method: FunctionDecl) -> list[WriteSite]:
        sites: list[WriteSite] = []
        for node in ast.walk(method.node):
            mutation = mutated_attr(node)
            if mutation is None:
                continue
            attr, location = mutation
            sites.append(WriteSite(
                attr=attr,
                function=method.qualname,
                node=location,
                line=getattr(location, "lineno", method.node.lineno),
                column=getattr(location, "col_offset", 0),
                held=self.lexically_held(method.qualname, location),
                is_rmw=_is_rmw(location, attr),
            ))
        return sites

    # -- transitive writes through self-calls --------------------------------

    def writes_transitively(self, method_fq: str,
                            class_qualname: str) -> set[str]:
        """Attrs ``method_fq`` writes, directly or through bounded
        same-class ``self.<m>()`` call chains."""
        cached = self._write_closure.get(method_fq)
        if cached is not None:
            return cached
        closure = self._closure(method_fq, class_qualname,
                                visited=set(), depth=0)
        self._write_closure[method_fq] = closure
        return closure

    def _closure(self, method_fq: str, class_qualname: str,
                 visited: set[str], depth: int) -> set[str]:
        if method_fq in visited or depth > _MAX_DEPTH:
            return set()
        visited.add(method_fq)
        method = self.project.functions.get(method_fq)
        if method is None:
            return set()
        written: set[str] = set()
        for node in ast.walk(method.node):
            mutation = mutated_attr(node)
            if mutation is not None:
                written.add(mutation[0])
        prefix = f"{class_qualname}."
        for edge in self.project.calls_from(method_fq):
            if edge.external or not edge.callee.startswith(prefix):
                continue
            written |= self._closure(edge.callee, class_qualname,
                                     visited, depth + 1)
        return written


def _shared_annotated_attrs(decl: ClassDecl) -> set[str]:
    """Attrs with a ``shared(...)`` annotation anywhere in the class's
    module — LCK001 already enforces their guard, so the inference-
    based ATM002 rule leaves them alone."""
    annotated: set[str] = set()
    module = decl.module
    for node in ast.walk(decl.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            for line in range(node.lineno, end + 1):
                if module.directives(line, "shared"):
                    annotated.add(target.attr)
    return annotated


def _infer_guard(sites: list[WriteSite],
                 lock_tokens: set[str]) -> str | None:
    """The unique lock token held at every locked write site; None
    when no write is locked or the locked writes disagree."""
    common: set[str] | None = None
    for site in sites:
        held = set(site.held)
        if not held:
            continue  # an unlocked write is a candidate finding
        common = held if common is None else (common & held)
    if not common:
        return None
    candidates = sorted(common & lock_tokens) or sorted(common)
    return candidates[0]


def _is_rmw(node: ast.AST, attr: str) -> bool:
    """Whether this write reads the attribute it assigns."""
    if isinstance(node, ast.AugAssign):
        return True
    if isinstance(node, ast.Assign):
        return attr in attr_reads(node.value)
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        return attr in attr_reads(node.value)
    return False


def analyze_attr_flows(deep: DeepContext, config: StaticcheckConfig,
                       ) -> AttrFlowResult:
    """Convenience entry point: run the pass, return the flows."""
    return AttrFlow(deep, config).analyze()


def attr_flows_for(deep: DeepContext,
                   config: StaticcheckConfig) -> AttrFlow:
    """Memoized analyzer on the shared :class:`DeepContext` — the ATM
    rules all consume the same pass instead of re-running it."""
    if deep.attr_flows is None:
        analyzer = AttrFlow(deep, config)
        analyzer.analyze()
        deep.attr_flows = analyzer
    return deep.attr_flows


def file_dependencies(project: ProjectContext) -> dict[str, list[str]]:
    """Direct file-level dependency edges from the call graph: file A
    depends on file B when a function in A has a resolved call edge
    into a function declared in B.  Consumed by the incremental cache
    (dependency fingerprints) and ``--changed`` (reverse dependents)."""
    deps: dict[str, set[str]] = {path: set() for path in project.modules}
    for caller_fq, edges in project.edges.items():
        caller = project.functions.get(caller_fq)
        if caller is None:
            continue
        for edge in edges:
            if edge.external:
                continue
            callee = project.functions.get(edge.callee)
            if callee is None or callee.module.path == caller.module.path:
                continue
            deps[caller.module.path].add(callee.module.path)
    return {path: sorted(targets) for path, targets in deps.items()}
