"""Parsing of ``# staticcheck:`` source annotations.

Annotations are ordinary comments attached to the line they govern:

* ``# staticcheck: shared(_lock)`` — on an attribute assignment in
  ``__init__``: the attribute is shared state guarded by
  ``self._lock``.  Several locks may be listed
  (``shared(_granted, _mutex)``) for the Condition-wrapping-a-Lock
  idiom.
* ``# staticcheck: guarded-by(_lock)`` — on (or directly above) a
  ``def`` line: every caller of the method already holds the lock, so
  mutations inside the body are considered guarded.
* ``# staticcheck: bounded(<witness>)`` — on a container attribute
  assignment: the container cannot grow without bound, and ``witness``
  names what enforces that — the capacity attribute checked before
  inserts (``bounded(capacity)``), the method that drains it
  (``bounded(flush)``), or the module constant fixing its key space
  (``bounded(TABLE_SOURCES)``).  Read by the deep GRW001 rule.
* ``# staticcheck: atomic(<witness>)`` — on (or directly above) a line
  the ATM/PUB dataflow rules report: the check-then-act or
  read-modify-write sequence is in fact atomic, and ``witness`` names
  the evidence — an outer mutex serializing every caller
  (``atomic(_poll_mutex)``), a re-check of the condition under the
  lock (``atomic(rechecked-under-lock)``), or a single-thread
  ownership argument (``atomic(daemon-thread-only)``).  The witness is
  mandatory: a bare ``atomic()`` does not waive anything.
* ``# staticcheck: hotpath`` — on (or directly above) a ``def`` line:
  the function is a hot-path *root* (a sensor, an execute loop, a
  ring-buffer operation, a daemon flush).  The hot-path analysis
  propagates hotness from every root through the call graph, and the
  PRF rules police per-call cost inside every hot function.
* ``# staticcheck: coldpath(<witness>)`` — on (or directly above) a
  ``def`` line: stop hot-path propagation into this function; the
  witness names why it is off the per-call path
  (``coldpath(statement-cache-miss-only)``,
  ``coldpath(flush-failure-only)``).  The witness is mandatory: a bare
  ``coldpath()`` does not stop propagation.
* ``# staticcheck: allocfree(<witness>)`` — on (or directly above) a
  line a PRF rule reports: the per-call cost is accounted for, and the
  witness names the evidence — a bound on how often the line runs
  (``allocfree(rate-limited-1-per-s)``), or the reason the allocation
  is irreducible (``allocfree(record-is-the-product)``).  The witness
  is mandatory: a bare ``allocfree()`` does not waive anything.
* ``# staticcheck: owned(<role>)`` — on an attribute assignment in
  ``__init__``: the attribute belongs to exactly one thread role —
  ``owned(main)`` for foreground-only state, or the role named after a
  thread-start site (``owned(repro-storage-daemon)``).  The ownership
  analysis (OWN rules) verifies the claim against the inferred
  thread-role map and reports drift (OWN003); the role argument is
  mandatory — a bare ``owned()`` asserts nothing.
* ``# staticcheck: domain(<dom>, <param>=<dom>)`` — declares integer
  domains for the domain dataflow (DOM rules).  On (or directly
  above) a ``def`` line: bare arguments give the return domain, in
  tuple order (``domain(local_seq, shard_id)`` for a pair), and
  ``param=dom`` arguments type parameters
  (``domain(seqs=src_seq)``).  On an attribute assignment: the
  field's element domain (``domain(encoded_seq)`` on a dict of
  encoded seqs).  On a plain local assignment: a forced local domain
  for values the inference cannot see, such as column reads
  (``seq = row[-1]  # staticcheck: domain(src_seq)``).  Domains come
  from the fixed lattice ``local_seq`` / ``encoded_seq`` /
  ``src_seq`` / ``shard_id`` / ``shard_index`` / ``session_id``.
* ``# staticcheck: mixeddomain(<witness>)`` — on (or directly above)
  a line a DOM rule reports: the cross-domain meeting is deliberate
  and sound, and the witness names why
  (``mixeddomain(whole-table-inspection-only)``).  The witness is
  mandatory: a bare ``mixeddomain()`` does not waive anything.
* ``# staticcheck: ignore`` / ``# staticcheck: ignore[LCK001,CLK001]``
  — suppress all / the listed findings reported for this line.

Multiple directives on one line are separated by semicolons:
``# staticcheck: shared(_lock); ignore[LCK002]``.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_COMMENT_RE = re.compile(r"#\s*staticcheck:\s*(?P<body>.+?)\s*$")
_DIRECTIVE_RE = re.compile(
    r"^(?P<name>[a-z-]+)\s*(?:[\(\[]\s*(?P<args>[^)\]]*)\s*[\)\]])?$"
)

KNOWN_DIRECTIVES = ("shared", "guarded-by", "bounded", "atomic",
                    "hotpath", "coldpath", "allocfree", "owned",
                    "domain", "mixeddomain", "ignore")


@dataclass(frozen=True)
class Directive:
    """One parsed directive: ``name`` plus its argument tuple."""

    name: str
    args: tuple[str, ...]
    line: int


class AnnotationError(ValueError):
    """A ``# staticcheck:`` comment that cannot be parsed."""


def parse_annotations(source: str) -> dict[int, list[Directive]]:
    """Extract directives from ``source``, keyed by 1-based line.

    Uses :mod:`tokenize` so that ``# staticcheck:`` occurrences inside
    string literals are not misread as annotations.
    """
    directives: dict[int, list[Directive]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return directives
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _COMMENT_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        for part in match.group("body").split(";"):
            part = part.strip()
            if not part:
                continue
            parsed = _DIRECTIVE_RE.match(part)
            if parsed is None or parsed.group("name") not in KNOWN_DIRECTIVES:
                raise AnnotationError(
                    f"line {line}: unrecognized staticcheck "
                    f"directive {part!r}"
                )
            raw_args = parsed.group("args") or ""
            args = tuple(
                a.strip() for a in raw_args.split(",") if a.strip()
            )
            directives.setdefault(line, []).append(
                Directive(parsed.group("name"), args, line))
    return directives
