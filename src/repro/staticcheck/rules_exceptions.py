"""EXC — exception discipline on the monitoring path.

``EXC001``: bare ``except:`` anywhere — it catches ``SystemExit`` and
``KeyboardInterrupt`` and gives the reader no contract at all.

``EXC002``: ``except Exception`` / ``except BaseException`` inside a
critical module (daemon, watchdog, sensors, monitor) whose handler
never re-raises.  A silently swallowed poll or sensor failure is
exactly the data loss the paper's integrated design exists to avoid;
catch the specific errors and count/record them instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticcheck.base import Rule, register
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity

BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    """Names from ``handler.type`` that are broad catches."""
    types: list[ast.expr] = []
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    elif handler.type is not None:
        types = [handler.type]
    found = []
    for node in types:
        if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
            found.append(node.id)
    return found


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains any ``raise``."""
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class BareExceptRule(Rule):
    """EXC001 — bare ``except:`` clause."""

    rule_id = "EXC001"
    summary = "bare `except:` swallows SystemExit/KeyboardInterrupt"
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "bare `except:` clause; name the exceptions this "
                    "handler is prepared to deal with",
                )


@register
class SwallowedBroadExceptRule(Rule):
    """EXC002 — broad except without re-raise in a critical module."""

    rule_id = "EXC002"
    summary = ("daemon/watchdog/sensor paths must not silently swallow "
               "broad exceptions")
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        if not config.path_matches(module.path,
                                   config.critical_except_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_names(node)
            if not broad or _reraises(node):
                continue
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"`except {broad[0]}` in a monitoring-critical module "
                f"swallows the error; catch the specific exceptions "
                f"and record the failure (or re-raise)",
            )
