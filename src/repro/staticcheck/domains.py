"""Interprocedural integer-domain dataflow for id-valued ints.

PR 8's sharded monitoring deliberately overloads plain ``int``s with
incompatible meanings: a shard-local ring sequence (``local_seq``),
the merged encoding ``local * SHARD_STRIDE + shard`` published by the
sharded views (``encoded_seq``), the persisted ``src_seq`` column of
the workload DB (the same encoding, on disk), a monitor shard id
(``shard_id``), a position into a per-shard structure after a
``% shard_count`` (``shard_index``) and a raw ``session_id``.  Mixing
them type-checks — they are all ``int`` — yet is always a bug: the
design doc's canonical example is a *scalar* high-water over merged
seqs, unsound because merged seqs are not time-ordered across shards.

This module assigns every parameter, local, attribute and return in
the analyzed program a *domain* from the small lattice above (plus
``unknown``), seeded three ways:

* **producer seeds** — configured qualnames with known return domains
  (``encode_seq`` → ``encoded_seq``, ``decode_seq`` →
  ``(local_seq, shard_id)``, ``shard_of_seq`` → ``shard_id``,
  ``RingBuffer.append`` → ``local_seq``, the snapshot/merge views);
* **name seeds** — parameter and attribute *names* that carry their
  domain (``session_id``, ``shard_id``, ``local_seq``, ``src_seq``,
  ``shard_index``, ``merged_seq``); deliberately not applied to bare
  locals, and a bare ``seq`` seeds nothing;
* **declared domains** — the ``# staticcheck: domain(...)`` directive
  on a ``def`` (bare args are the return domain, in tuple order;
  ``param=dom`` args type parameters), on an attribute assignment
  (the field's element domain) or on a local assignment (a forced,
  join-proof local domain for e.g. ``seq = row[-1]`` column reads).

Domains propagate through assignments, tuple unpacking, calls and
returns, ``for`` targets and container element flow (a container's
domain *is* its element domain; for dicts, the value's).  Structural
conversions are modeled: ``x % n`` maps ``session_id`` → ``shard_index``
and an encoded seq → ``shard_id``; ``x // n`` maps an encoded seq →
``local_seq``.  ``dict.get`` deliberately yields ``unknown`` — its
default argument is almost always a neutral ``0``.

On top of the flow the module collects *sites* — cross-domain
compares/arithmetic, encoded-seq ordering outside the merge helpers,
local-seq arguments flowing into ``src_seq`` parameters, forbidden
subscript indexes, declared-vs-inferred drift — which the DOM rules
(:mod:`repro.staticcheck.rules_domains`) turn into findings, each
waivable with an evidenced ``mixeddomain(<witness>)``.

Per-shard *vector* high-waters index by shard before comparing, so any
ordering whose operands read through a subscript is treated as
shard-anchored and exempt from the cross-shard ordering check; the
configured merge helpers (the k-way views, ``load_high_water_vector``)
are exempt wholesale — their bodies *implement* the ordering.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Any, Iterable

from repro.staticcheck.callgraph import (
    CallEdge,
    FunctionDecl,
    ProjectContext,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import TraceEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.lockflow import DeepContext

#: The domain lattice.  ``unknown`` is bottom: it joins to anything
#: and never produces a finding.
DOMAIN_NAMES = ("local_seq", "encoded_seq", "src_seq", "shard_id",
                "shard_index", "session_id", "unknown")

UNKNOWN = "unknown"

#: A value's domain.  Length 1 for scalars; longer for tuple-valued
#: expressions (``decode_seq`` returns ``(local_seq, shard_id)``).
Dom = tuple[str, ...]

UNKNOWN_DOM: Dom = (UNKNOWN,)

#: Domains that carry the merged ``local*SHARD_STRIDE+shard`` encoding
#: (in memory and persisted).  Ordering them across shards is the
#: unsound scalar high-water.
ENCODED_SPACE = frozenset({"encoded_seq", "src_seq"})

#: Domain pairs that may legitimately meet: an encoded seq is written
#: to disk as ``src_seq`` unchanged, and a ``shard_id`` from the
#: encoding is numerically the ``shard_index`` of a full-stride table.
_COMPATIBLE_PAIRS = frozenset({
    frozenset({"encoded_seq", "src_seq"}),
    frozenset({"shard_id", "shard_index"}),
})

#: Domains that must never index a per-shard structure: using them is
#: the missing-``% shard_count`` bug (DOM003).  ``shard_id`` and
#: ``shard_index`` are both allowed — per-shard dicts are keyed by
#: either, and the two are numerically interchangeable.
_INDEX_FORBIDDEN = frozenset({"session_id", "local_seq",
                              "encoded_seq", "src_seq"})


def scalar(dom: Dom) -> str:
    """The scalar domain of ``dom`` (``unknown`` for tuple values)."""
    return dom[0] if len(dom) == 1 else UNKNOWN


def join(a: Dom, b: Dom) -> Dom:
    """Least upper bound: agreement survives, conflict is unknown."""
    if a == UNKNOWN_DOM:
        return b
    if b == UNKNOWN_DOM:
        return a
    if len(a) != len(b):
        return UNKNOWN_DOM
    merged = []
    for left, right in zip(a, b):
        if left == right:
            merged.append(left)
        elif left == UNKNOWN:
            merged.append(right)
        elif right == UNKNOWN:
            merged.append(left)
        else:
            merged.append(UNKNOWN)
    return tuple(merged)


def compatible(a: str, b: str) -> bool:
    """May scalar domains ``a`` and ``b`` legitimately meet?"""
    if a == b or UNKNOWN in (a, b):
        return True
    return frozenset({a, b}) in _COMPATIBLE_PAIRS


# -- results ------------------------------------------------------------------


@dataclass(frozen=True)
class DomainSite:
    """One place two domains meet, consumed by the DOM rules.

    ``kind`` is one of ``compare`` / ``arith`` / ``order`` (DOM001),
    ``argflow`` (DOM002), ``index`` (DOM003), ``drift`` / ``directive``
    (DOM004)."""

    kind: str
    path: str
    line: int
    column: int
    function: str
    left: str
    right: str
    note: str
    trace: tuple[TraceEntry, ...] = ()


@dataclass
class FunctionDomains:
    """Inferred and declared domains of one function's signature."""

    params: dict[str, Dom] = field(default_factory=dict)
    """Parameter name -> effective domain (declared > name seed)."""
    returns: Dom = UNKNOWN_DOM
    """Effective return domain (declared > producer seed > inferred)."""
    inferred_returns: Dom = UNKNOWN_DOM
    """Raw inferred return domain, kept for DOM004 drift detection."""
    declared_returns: Dom | None = None
    declared_line: int | None = None


@dataclass
class DomainResult:
    """The whole-program domain map."""

    functions: dict[str, FunctionDomains] = field(default_factory=dict)
    fields: dict[str, Dom] = field(default_factory=dict)
    """``Class.attr`` token -> effective element domain."""
    inferred_fields: dict[str, Dom] = field(default_factory=dict)
    """Raw inferred field domains (DOM004 drift detection)."""
    declared_fields: dict[str, tuple[Dom, str, int]] = \
        field(default_factory=dict)
    """``Class.attr`` -> (declared domain, path, line)."""
    sites: list[DomainSite] = field(default_factory=list)
    return_seeds: dict[str, Dom] = field(default_factory=dict)
    name_seeds: dict[str, str] = field(default_factory=dict)
    merge_helpers: tuple[str, ...] = ()

    def param_domain(self, qualname: str, param: str) -> str:
        """Scalar domain of ``param`` on ``qualname`` (``unknown`` when
        the function or parameter is untyped)."""
        info = self.functions.get(qualname)
        if info is None:
            return UNKNOWN
        return scalar(info.params.get(param, UNKNOWN_DOM))

    def return_domain(self, qualname: str) -> Dom:
        info = self.functions.get(qualname)
        return info.returns if info is not None else UNKNOWN_DOM

    def to_json(self) -> dict[str, Any]:
        """The domain-map artifact (``repro lint --domain-map``)."""
        functions: dict[str, Any] = {}
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            params = {name: "/".join(dom)
                      for name, dom in sorted(info.params.items())
                      if dom != UNKNOWN_DOM}
            if not params and info.returns == UNKNOWN_DOM:
                continue
            entry: dict[str, Any] = {"params": params,
                                     "returns": "/".join(info.returns)}
            if info.declared_returns is not None:
                entry["declared_returns"] = "/".join(info.declared_returns)
            functions[qualname] = entry
        fields = {token: "/".join(dom)
                  for token, dom in sorted(self.fields.items())
                  if dom != UNKNOWN_DOM}
        return {
            "generated_by": "repro.staticcheck.domains",
            "version": 1,
            "lattice": list(DOMAIN_NAMES),
            "seeds": {
                "returns": {q: "/".join(dom) for q, dom
                            in sorted(self.return_seeds.items())},
                "names": dict(sorted(self.name_seeds.items())),
                "merge_helpers": list(self.merge_helpers),
            },
            "functions": functions,
            "fields": fields,
        }


# -- seed parsing -------------------------------------------------------------


def _parse_dom(text: str) -> Dom | None:
    parts = tuple(p.strip() for p in text.split("/") if p.strip())
    if not parts or any(p not in DOMAIN_NAMES for p in parts):
        return None
    return parts


def parse_return_seeds(config: StaticcheckConfig) -> dict[str, Dom]:
    """``"qualname=dom"`` / ``"qualname=dom1/dom2"`` entries of
    ``domain_seed_returns``, keyed by exact callee qualname (internal
    edges and fixture-side external edges both carry it)."""
    seeds: dict[str, Dom] = {}
    for entry in config.domain_seed_returns:
        qualname, _, rhs = entry.partition("=")
        dom = _parse_dom(rhs)
        if qualname.strip() and dom is not None:
            seeds[qualname.strip()] = dom
    return seeds


def parse_name_seeds(config: StaticcheckConfig) -> dict[str, str]:
    """``"name=dom"`` entries of ``domain_name_seeds`` — scalar domains
    carried by parameter and attribute names."""
    seeds: dict[str, str] = {}
    for entry in config.domain_name_seeds:
        name, _, rhs = entry.partition("=")
        dom = rhs.strip() or name.strip()
        if name.strip() and dom in DOMAIN_NAMES:
            seeds[name.strip()] = dom
    return seeds


# -- annotation harvesting ----------------------------------------------------


def _split_directive_args(args: tuple[str, ...],
                          ) -> tuple[tuple[str, ...], dict[str, str]]:
    """Bare args (return/forced domain, in order) and ``k=v`` args."""
    bare: list[str] = []
    named: dict[str, str] = {}
    for arg in args:
        name, sep, value = arg.partition("=")
        if sep:
            named[name.strip()] = value.strip()
        else:
            bare.append(arg.strip())
    return tuple(bare), named


class _Declared:
    """Every ``domain(...)`` directive in the program, resolved to the
    construct it annotates, plus the invalid ones (DOM004 sites)."""

    def __init__(self) -> None:
        self.fn_returns: dict[str, tuple[Dom, int]] = {}
        self.fn_params: dict[str, dict[str, Dom]] = {}
        self.fields: dict[str, tuple[Dom, str, int]] = {}
        self.locals: dict[str, dict[int, Dom]] = {}
        """Function qualname -> directive line -> forced domain."""
        self.invalid: list[DomainSite] = []

    def _bad(self, path: str, line: int, function: str,
             text: str) -> None:
        self.invalid.append(DomainSite(
            kind="directive", path=path, line=line, column=0,
            function=function, left=text, right="",
            note=(f"domain({text}) names no known domain; the lattice "
                  f"is {', '.join(DOMAIN_NAMES)}")))

    def harvest_function(self, decl: FunctionDecl) -> None:
        directive = decl.module.function_directive(decl.node, "domain")
        if directive is None:
            return
        bare, named = _split_directive_args(directive.args)
        if bare:
            dom = _parse_dom("/".join(bare))
            if dom is None:
                self._bad(decl.module.path, directive.line,
                          decl.qualname, ", ".join(bare))
            else:
                self.fn_returns[decl.qualname] = (dom, directive.line)
        for param, text in named.items():
            dom = _parse_dom(text)
            if dom is None:
                self._bad(decl.module.path, directive.line,
                          decl.qualname, f"{param}={text}")
            else:
                self.fn_params.setdefault(decl.qualname, {})[param] = dom

    def harvest_statement(self, decl: FunctionDecl,
                          stmt: ast.stmt) -> None:
        """``domain(...)`` on an assignment line: a field domain for a
        ``self.attr`` target, a forced local domain otherwise."""
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        end = getattr(stmt, "end_lineno", None) or stmt.lineno
        for line in range(stmt.lineno, end + 1):
            for directive in decl.module.directives(line, "domain"):
                bare, named = _split_directive_args(directive.args)
                if named or not bare:
                    self._bad(decl.module.path, directive.line,
                              decl.qualname, ", ".join(directive.args)
                              or "<empty>")
                    continue
                dom = _parse_dom("/".join(bare))
                if dom is None:
                    self._bad(decl.module.path, directive.line,
                              decl.qualname, ", ".join(bare))
                    continue
                attr = _self_attr_target(stmt)
                if attr is not None and decl.class_qualname is not None:
                    token = f"{decl.class_qualname}.{attr}"
                    self.fields[token] = (dom, decl.module.path,
                                          directive.line)
                else:
                    self.locals.setdefault(decl.qualname, {})[
                        stmt.lineno] = dom


def _self_attr_target(stmt: ast.stmt) -> str | None:
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    for target in targets:
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            return target.attr
    return None


# -- per-function walking -----------------------------------------------------


def _own_nodes(root: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` that does not descend into nested function or
    lambda bodies — their locals live in a different scope and their
    statements must not pollute the enclosing function's environment
    (the daemon's poll-group closures, the IMA row builders)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


_STRUCTURAL_UNKNOWN = frozenset({"get", "keys", "len", "range", "abs",
                                 "id", "hash", "sum"})
_PASS_THROUGH = frozenset({"list", "tuple", "set", "sorted", "int",
                           "values", "reversed", "iter", "next"})


class _FunctionEnv:
    """Flow-insensitive name environment of one function."""

    def __init__(self) -> None:
        self.env: dict[str, Dom] = {}
        self.forced: set[str] = set()
        self.origins: dict[str, TraceEntry] = {}

    def bind(self, name: str, dom: Dom, *, force: bool = False,
             origin: TraceEntry | None = None) -> None:
        if name in self.forced and not force:
            return
        if force:
            self.forced.add(name)
            self.env[name] = dom
        else:
            self.env[name] = join(self.env.get(name, UNKNOWN_DOM), dom)
        if (origin is not None and self.env[name] != UNKNOWN_DOM
                and name not in self.origins):
            self.origins[name] = origin

    def dom_of(self, name: str) -> Dom:
        return self.env.get(name, UNKNOWN_DOM)


class DomainFlow:
    """The propagation engine.  One instance analyzes one project."""

    #: Outer interprocedural passes: enough for a producer's return to
    #: reach a caller's field and that field's reader in turn.
    _PASSES = 3
    #: Inner flow-insensitive sweeps per function body.
    _SWEEPS = 4

    def __init__(self, project: ProjectContext,
                 config: StaticcheckConfig) -> None:
        self.project = project
        self.config = config
        self.return_seeds = parse_return_seeds(config)
        self.name_seeds = parse_name_seeds(config)
        self.merge_helpers = config.domain_merge_helpers
        self.declared = _Declared()
        self.inferred_returns: dict[str, Dom] = {}
        self.inferred_fields: dict[str, Dom] = {}
        self._edge_maps: dict[str, dict[int, CallEdge]] = {}

    # -- seed/declared lookups ------------------------------------------------

    def _is_merge_helper(self, qualname: str) -> bool:
        return any(fnmatch(qualname, pattern)
                   for pattern in self.merge_helpers)

    def _callee_returns(self, callee: str) -> Dom:
        declared = self.declared.fn_returns.get(callee)
        if declared is not None:
            return declared[0]
        seeded = self.return_seeds.get(callee)
        if seeded is not None:
            return seeded
        return self.inferred_returns.get(callee, UNKNOWN_DOM)

    def _param_dom(self, callee: str, param: str) -> Dom:
        declared = self.declared.fn_params.get(callee, {}).get(param)
        if declared is not None:
            return declared
        seeded = self.name_seeds.get(param)
        if seeded is not None:
            return (seeded,)
        return UNKNOWN_DOM

    def _field_dom(self, class_qualname: str | None,
                   attr: str) -> Dom:
        if class_qualname is not None:
            token = f"{class_qualname}.{attr}"
            declared = self.declared.fields.get(token)
            if declared is not None:
                return declared[0]
            inferred = self.inferred_fields.get(token)
            if inferred is not None and inferred != UNKNOWN_DOM:
                return inferred
        seeded = self.name_seeds.get(attr)
        return (seeded,) if seeded is not None else UNKNOWN_DOM

    def _edges_by_node(self, qualname: str) -> dict[int, CallEdge]:
        cached = self._edge_maps.get(qualname)
        if cached is None:
            cached = {id(edge.node): edge
                      for edge in self.project.calls_from(qualname)}
            self._edge_maps[qualname] = cached
        return cached

    # -- expression evaluation ------------------------------------------------

    def _eval(self, decl: FunctionDecl, env: _FunctionEnv,
              node: ast.expr) -> Dom:
        if isinstance(node, ast.Name):
            return env.dom_of(node.id)
        if isinstance(node, ast.Constant):
            return UNKNOWN_DOM
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                return self._field_dom(decl.class_qualname, node.attr)
            seeded = self.name_seeds.get(node.attr)
            return (seeded,) if seeded is not None else UNKNOWN_DOM
        if isinstance(node, ast.Call):
            return self._eval_call(decl, env, node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(decl, env, node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(decl, env, node)
        if isinstance(node, ast.Tuple):
            return tuple(scalar(self._eval(decl, env, elt))
                         for elt in node.elts) or UNKNOWN_DOM
        if isinstance(node, (ast.List, ast.Set)):
            dom: Dom = UNKNOWN_DOM
            for elt in node.elts:
                dom = join(dom, (scalar(self._eval(decl, env, elt)),))
            return dom
        if isinstance(node, ast.IfExp):
            return join(self._eval(decl, env, node.body),
                        self._eval(decl, env, node.orelse))
        if isinstance(node, ast.BoolOp):
            dom = UNKNOWN_DOM
            for value in node.values:
                dom = join(dom, self._eval(decl, env, value))
            return dom
        if isinstance(node, ast.NamedExpr):
            return self._eval(decl, env, node.value)
        if isinstance(node, ast.Starred):
            return self._eval(decl, env, node.value)
        return UNKNOWN_DOM

    def _eval_call(self, decl: FunctionDecl, env: _FunctionEnv,
                   node: ast.Call) -> Dom:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in ("max", "min") and node.args:
            dom: Dom = UNKNOWN_DOM
            for arg in node.args:
                dom = join(dom, (scalar(self._eval(decl, env, arg)),))
            return dom
        if name == "enumerate" and node.args:
            elem = scalar(self._eval(decl, env, node.args[0]))
            return (UNKNOWN, elem)
        if name == "items" and isinstance(func, ast.Attribute):
            value = scalar(self._eval(decl, env, func.value))
            return (UNKNOWN, value)
        if name in _STRUCTURAL_UNKNOWN:
            return UNKNOWN_DOM
        if name in _PASS_THROUGH:
            if isinstance(func, ast.Attribute):
                return self._eval(decl, env, func.value)
            if node.args:
                return self._eval(decl, env, node.args[0])
            return UNKNOWN_DOM
        edge = self._edges_by_node(decl.qualname).get(id(node))
        if edge is not None:
            return self._callee_returns(edge.callee)
        return UNKNOWN_DOM

    def _eval_binop(self, decl: FunctionDecl, env: _FunctionEnv,
                    node: ast.BinOp) -> Dom:
        left = scalar(self._eval(decl, env, node.left))
        if isinstance(node.op, ast.Mod):
            if left == "session_id":
                return ("shard_index",)
            if left in ENCODED_SPACE:
                return ("shard_id",)
            return UNKNOWN_DOM
        if isinstance(node.op, ast.FloorDiv):
            if left in ENCODED_SPACE:
                return ("local_seq",)
            return UNKNOWN_DOM
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            right = scalar(self._eval(decl, env, node.right))
            if left == right and left != UNKNOWN:
                return (left,)
            # ``seq + 1`` keeps its domain; mixing two known domains
            # goes to unknown (the arith site reports it separately).
            if right == UNKNOWN and left != UNKNOWN \
                    and isinstance(node.right, ast.Constant):
                return (left,)
            if left == UNKNOWN and right != UNKNOWN \
                    and isinstance(node.left, ast.Constant):
                return (right,)
            return UNKNOWN_DOM
        return UNKNOWN_DOM

    def _eval_subscript(self, decl: FunctionDecl, env: _FunctionEnv,
                        node: ast.Subscript) -> Dom:
        value = self._eval(decl, env, node.value)
        if isinstance(node.slice, ast.Slice):
            return value
        if len(value) > 1:
            index = node.slice
            if isinstance(index, ast.Constant) \
                    and isinstance(index.value, int):
                position = index.value
                if -len(value) <= position < len(value):
                    return (value[position],)
                return UNKNOWN_DOM
            return UNKNOWN_DOM
        # Scalar container convention: element domain == container
        # domain (a per-shard vector of encoded seqs *is* encoded).
        return value

    # -- statement sweep ------------------------------------------------------

    def _initial_env(self, decl: FunctionDecl) -> _FunctionEnv:
        env = _FunctionEnv()
        args = decl.node.args
        declared = self.declared.fn_params.get(decl.qualname, {})
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            dom = declared.get(arg.arg)
            if dom is None:
                seeded = self.name_seeds.get(arg.arg)
                dom = (seeded,) if seeded is not None else None
            if dom is not None:
                env.bind(arg.arg, dom, force=True, origin=TraceEntry(
                    path=decl.module.path, line=decl.node.lineno,
                    function=decl.qualname,
                    note=f"parameter {arg.arg} is {'/'.join(dom)}"))
        return env

    def _assign_target(self, decl: FunctionDecl, env: _FunctionEnv,
                       target: ast.expr, dom: Dom, line: int,
                       forced: Dom | None) -> None:
        if isinstance(target, ast.Name):
            use = forced if forced is not None else dom
            env.bind(target.id, use, force=forced is not None,
                     origin=TraceEntry(
                         path=decl.module.path, line=line,
                         function=decl.qualname,
                         note=f"{target.id} <- {'/'.join(use)}"))
            return
        if isinstance(target, ast.Tuple):
            use = forced if forced is not None else dom
            for position, elt in enumerate(target.elts):
                if not isinstance(elt, ast.Name):
                    continue
                if len(use) == len(target.elts):
                    element: Dom = (use[position],)
                elif len(use) == 1:
                    element = use
                else:
                    element = UNKNOWN_DOM
                env.bind(elt.id, element, force=forced is not None,
                         origin=TraceEntry(
                             path=decl.module.path, line=line,
                             function=decl.qualname,
                             note=f"{elt.id} <- {'/'.join(element)}"))
            return
        attr = _self_attr_of(target)
        if attr is not None and decl.class_qualname is not None:
            token = f"{decl.class_qualname}.{attr}"
            self.inferred_fields[token] = join(
                self.inferred_fields.get(token, UNKNOWN_DOM),
                (scalar(dom),))

    def _sweep(self, decl: FunctionDecl, env: _FunctionEnv) -> Dom:
        """One flow-insensitive pass over the body; returns the joined
        domain of every ``return`` expression."""
        forced_lines = self.declared.locals.get(decl.qualname, {})
        returns: Dom = UNKNOWN_DOM
        for node in _own_nodes(decl.node):
            if isinstance(node, ast.Assign):
                dom = self._eval(decl, env, node.value)
                forced = forced_lines.get(node.lineno)
                for target in node.targets:
                    self._assign_target(decl, env, target, dom,
                                        node.lineno, forced)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                dom = self._eval(decl, env, node.value)
                forced = forced_lines.get(node.lineno)
                self._assign_target(decl, env, node.target, dom,
                                    node.lineno, forced)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    dom = self._eval(decl, env, ast.BinOp(
                        left=ast.copy_location(
                            ast.Name(id=node.target.id, ctx=ast.Load()),
                            node),
                        op=node.op, right=node.value))
                    env.bind(node.target.id, dom)
            elif isinstance(node, ast.For):
                dom = self._eval(decl, env, node.iter)
                self._assign_target(decl, env, node.target, dom,
                                    node.lineno, None)
            elif isinstance(node, ast.Return) and node.value is not None:
                returns = join(returns,
                               self._eval(decl, env, node.value))
        return returns

    # -- driving --------------------------------------------------------------

    def analyze(self) -> DomainResult:
        for decl in self.project.functions.values():
            self.declared.harvest_function(decl)
            for node in _own_nodes(decl.node):
                if isinstance(node, ast.stmt):
                    self.declared.harvest_statement(decl, node)
        envs: dict[str, _FunctionEnv] = {}
        for _ in range(self._PASSES):
            for qualname, decl in self.project.functions.items():
                env = self._initial_env(decl)
                returns = UNKNOWN_DOM
                for _ in range(self._SWEEPS):
                    before = dict(env.env)
                    returns = self._sweep(decl, env)
                    if env.env == before:
                        break
                envs[qualname] = env
                self.inferred_returns[qualname] = returns
        result = self._build_result(envs)
        self._collect_sites(result, envs)
        return result

    def _build_result(self,
                      envs: dict[str, _FunctionEnv]) -> DomainResult:
        result = DomainResult(
            return_seeds=dict(self.return_seeds),
            name_seeds=dict(self.name_seeds),
            merge_helpers=tuple(self.merge_helpers),
        )
        for qualname, decl in self.project.functions.items():
            info = FunctionDomains()
            declared = self.declared.fn_returns.get(qualname)
            if declared is not None:
                info.declared_returns, info.declared_line = declared
            info.inferred_returns = self.inferred_returns.get(
                qualname, UNKNOWN_DOM)
            info.returns = self._callee_returns(qualname)
            args = decl.node.args
            for arg in (*args.posonlyargs, *args.args,
                        *args.kwonlyargs):
                if arg.arg == "self":
                    continue
                dom = self._param_dom(qualname, arg.arg)
                if dom != UNKNOWN_DOM:
                    info.params[arg.arg] = dom
            result.functions[qualname] = info
        for token, (dom, path, line) in self.declared.fields.items():
            result.fields[token] = dom
        for token, dom in self.inferred_fields.items():
            if token not in result.fields and dom != UNKNOWN_DOM:
                result.fields[token] = dom
        result.inferred_fields = dict(self.inferred_fields)
        result.declared_fields = dict(self.declared.fields)
        return result

    # -- site collection ------------------------------------------------------

    def _origin_trace(self, env: _FunctionEnv,
                      *nodes: ast.expr) -> tuple[TraceEntry, ...]:
        trace: list[TraceEntry] = []
        for node in nodes:
            for name_node in ast.walk(node):
                if isinstance(name_node, ast.Name):
                    origin = env.origins.get(name_node.id)
                    if origin is not None and origin not in trace:
                        trace.append(origin)
        return tuple(trace)

    @staticmethod
    def _has_subscript(*nodes: ast.expr) -> bool:
        return any(isinstance(inner, ast.Subscript)
                   for node in nodes for inner in ast.walk(node))

    def _collect_sites(self, result: DomainResult,
                       envs: dict[str, _FunctionEnv]) -> None:
        result.sites.extend(self.declared.invalid)
        for qualname, decl in self.project.functions.items():
            env = envs[qualname]
            producer = qualname in self.return_seeds
            merge_helper = self._is_merge_helper(qualname)
            if not producer:
                self._function_sites(result, decl, env, merge_helper)
            self._drift_sites(result, decl)
        self._field_drift_sites(result)
        result.sites.sort(key=lambda s: (s.path, s.line, s.column,
                                         s.kind))

    def _field_drift_sites(self, result: DomainResult) -> None:
        for token, (dom, path, line) in self.declared.fields.items():
            inferred = self.inferred_fields.get(token, UNKNOWN_DOM)
            in_scalar = scalar(inferred)
            de_scalar = scalar(dom)
            if in_scalar != UNKNOWN and de_scalar != UNKNOWN \
                    and not compatible(in_scalar, de_scalar):
                result.sites.append(DomainSite(
                    kind="drift", path=path, line=line, column=0,
                    function=token.rsplit(".", 1)[0],
                    left=de_scalar, right=in_scalar,
                    note=(f"field {token} declared {de_scalar} but "
                          f"assignments infer {in_scalar}")))

    def _site(self, result: DomainResult, decl: FunctionDecl,
              env: _FunctionEnv, node: ast.expr, kind: str,
              left: str, right: str, note: str,
              *operands: ast.expr) -> None:
        result.sites.append(DomainSite(
            kind=kind, path=decl.module.path, line=node.lineno,
            column=node.col_offset, function=decl.qualname,
            left=left, right=right, note=note,
            trace=self._origin_trace(env, *operands)))

    def _function_sites(self, result: DomainResult, decl: FunctionDecl,
                        env: _FunctionEnv, merge_helper: bool) -> None:
        for node in _own_nodes(decl.node):
            if isinstance(node, ast.Compare):
                self._compare_sites(result, decl, env, node,
                                    merge_helper)
            elif isinstance(node, ast.BinOp):
                self._arith_site(result, decl, env, node)
            elif isinstance(node, ast.Subscript):
                self._index_site(result, decl, env, node)
            elif isinstance(node, ast.Call):
                self._order_call_site(result, decl, env, node,
                                      merge_helper)
        for edge in self.project.calls_from(decl.qualname):
            if not edge.external:
                self._argflow_sites(result, decl, env, edge)

    def _compare_sites(self, result: DomainResult, decl: FunctionDecl,
                       env: _FunctionEnv, node: ast.Compare,
                       merge_helper: bool) -> None:
        operands = [node.left, *node.comparators]
        for position, op in enumerate(node.ops):
            left_node = operands[position]
            right_node = operands[position + 1]
            if isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)):
                continue
            if isinstance(left_node, ast.Constant) \
                    or isinstance(right_node, ast.Constant):
                continue
            left = scalar(self._eval(decl, env, left_node))
            right = scalar(self._eval(decl, env, right_node))
            if UNKNOWN in (left, right):
                continue
            ordering = isinstance(op, (ast.Lt, ast.LtE, ast.Gt,
                                       ast.GtE))
            if not compatible(left, right):
                self._site(result, decl, env, node, "compare", left,
                           right,
                           f"{left} compared against {right}",
                           left_node, right_node)
            elif (ordering and left in ENCODED_SPACE
                    and right in ENCODED_SPACE and not merge_helper
                    and not self._has_subscript(left_node, right_node)):
                self._site(result, decl, env, node, "order", left,
                           right,
                           f"scalar ordering of {left} against {right} "
                           f"without a per-shard anchor",
                           left_node, right_node)

    def _arith_site(self, result: DomainResult, decl: FunctionDecl,
                    env: _FunctionEnv, node: ast.BinOp) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
            return
        if isinstance(node.left, ast.Constant) \
                or isinstance(node.right, ast.Constant):
            return
        left = scalar(self._eval(decl, env, node.left))
        right = scalar(self._eval(decl, env, node.right))
        if UNKNOWN in (left, right) or compatible(left, right):
            return
        self._site(result, decl, env, node, "arith", left, right,
                   f"arithmetic mixes {left} with {right}",
                   node.left, node.right)

    def _index_site(self, result: DomainResult, decl: FunctionDecl,
                    env: _FunctionEnv, node: ast.Subscript) -> None:
        if isinstance(node.slice, (ast.Slice, ast.Constant, ast.Tuple)):
            return
        index = scalar(self._eval(decl, env, node.slice))
        if index not in _INDEX_FORBIDDEN:
            return
        self._site(result, decl, env, node, "index", index,
                   "shard_index",
                   f"{index} used as a subscript where a shard index "
                   f"is required", node.slice)

    def _order_call_site(self, result: DomainResult,
                         decl: FunctionDecl, env: _FunctionEnv,
                         node: ast.Call, merge_helper: bool) -> None:
        if merge_helper:
            return
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name not in ("max", "min") or len(node.args) < 2:
            return
        doms = [scalar(self._eval(decl, env, arg))
                for arg in node.args]
        if not all(dom in ENCODED_SPACE for dom in doms):
            return
        if self._has_subscript(*node.args):
            return
        self._site(result, decl, env, node, "order", doms[0], doms[-1],
                   f"{name}() over encoded seqs without a per-shard "
                   f"anchor", *node.args)

    def _argflow_sites(self, result: DomainResult, decl: FunctionDecl,
                       env: _FunctionEnv, edge: CallEdge) -> None:
        callee = self.project.functions.get(edge.callee)
        if callee is None:
            return
        params = [arg.arg for arg in (*callee.node.args.posonlyargs,
                                      *callee.node.args.args)]
        if params and params[0] == "self":
            params = params[1:]
        pairs: list[tuple[str, ast.expr]] = list(zip(params,
                                                     edge.node.args))
        for keyword in edge.node.keywords:
            if keyword.arg is not None:
                pairs.append((keyword.arg, keyword.value))
        for param, value in pairs:
            expected = scalar(self._param_dom(edge.callee, param))
            if expected == UNKNOWN:
                continue
            actual = scalar(self._eval(decl, env, value))
            if actual == UNKNOWN or compatible(actual, expected):
                continue
            self._site(
                result, decl, env, edge.node, "argflow", actual,
                expected,
                f"{actual} flows into parameter {param} of "
                f"{edge.callee}, which expects {expected}", value)

    def _drift_sites(self, result: DomainResult,
                     decl: FunctionDecl) -> None:
        declared = self.declared.fn_returns.get(decl.qualname)
        if declared is not None:
            dom, line = declared
            inferred = self.inferred_returns.get(decl.qualname,
                                                 UNKNOWN_DOM)
            if (inferred != UNKNOWN_DOM and len(inferred) == len(dom)
                    and any(not compatible(a, b) and UNKNOWN
                            not in (a, b)
                            for a, b in zip(dom, inferred))):
                result.sites.append(DomainSite(
                    kind="drift", path=decl.module.path, line=line,
                    column=0, function=decl.qualname,
                    left="/".join(dom), right="/".join(inferred),
                    note=(f"declared return domain {'/'.join(dom)} "
                          f"but the body returns "
                          f"{'/'.join(inferred)}")))


def _self_attr_of(target: ast.expr) -> str | None:
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return None


# -- entry points -------------------------------------------------------------


def compute_domains(deep: "DeepContext",
                    config: StaticcheckConfig) -> DomainResult:
    """Run the propagation over an already-built project."""
    return DomainFlow(deep.project, config).analyze()


def domains_for(deep: "DeepContext",
                config: StaticcheckConfig) -> DomainResult:
    """Memoized phase on the shared :class:`DeepContext` — the four
    DOM rules (and the map export) all consume one computation."""
    if deep.domains is None:
        deep.domains = compute_domains(deep, config)
    return deep.domains


def compute_domain_map(paths: Iterable[str] | None = None,
                       config: StaticcheckConfig | None = None,
                       ) -> DomainResult:
    """Build the project and run the phase over ``paths`` (default:
    the installed ``repro`` package sources), mirroring
    :func:`repro.staticcheck.ownership.compute_ownership_map`."""
    import pathlib

    from repro.staticcheck.callgraph import build_project
    from repro.staticcheck.driver import ModuleContext, iter_python_files
    from repro.staticcheck.lockflow import DeepContext, LockFlow

    if config is None:
        config = StaticcheckConfig()
    if paths is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        paths = [str(package_root)]
    modules = []
    for path in iter_python_files(list(paths)):
        try:
            modules.append(ModuleContext.from_source(
                str(path), path.read_text(encoding="utf-8")))
        except (OSError, SyntaxError):
            continue
    project = build_project(modules)
    lockflow = LockFlow(project, config).analyze()
    deep = DeepContext(project=project, lockflow=lockflow)
    return domains_for(deep, config)
