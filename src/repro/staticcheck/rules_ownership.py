"""OWN — thread-ownership rule family (``--deep``).

Built on the whole-program thread-role model of
:mod:`repro.staticcheck.ownership`: roles are inferred from
``threading.Thread`` start sites, propagated breadth-first through the
call graph, and joined with every ``self.<attr>`` read/write site to
classify each field as ``exclusive``/``guarded``/``handoff``/
``shared-unsynchronized``.

``OWN001`` — cross-thread access with no common guard.  A field is
read or written by several thread roles and no single lock token is
held at every post-construction access.  Either some role is touching
state it does not own, or the publication discipline is missing — add
the guard (and a ``shared(<lock>)`` annotation so LCK001 polices it),
or assert single-role ownership with ``owned(<role>)`` (OWN003 then
verifies the assertion holds as the call graph evolves).

``OWN002`` — object escaping its owning thread without a publication
point.  ``self`` is stored into a module global (registry, singleton
slot) from an ordinary method with no lock held at the store: any
other thread can now reach the object, but nothing orders that access
after the state it observes.  PUB001 polices the same escape during
``__init__``; OWN002 extends it to the object's whole lifetime.  A
deliberate publication (e.g. one serialized by an outer mutex) is
waived with ``atomic(<witness>)`` on the line.

``OWN003`` — annotation drift.  An ``owned(<role>)`` claim that the
inferred map contradicts (the field is reached by other roles, or the
role name does not exist), or a ``shared(<lock>)`` claim naming a lock
that is not the guard actually held at the field's accesses.  The
annotations are load-bearing — LCK001 and the runtime access witness
trust them — so they must track reality.
"""

from __future__ import annotations

from typing import Iterable

from repro.staticcheck.base import ProjectRule, register_deep
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.lockflow import DeepContext
from repro.staticcheck.ownership import (
    MAIN_ROLE,
    AccessSite,
    ClassOwnership,
    FieldOwnership,
    OwnershipResult,
    ownership_for,
)
from repro.staticcheck.rules_atomic import _global_stores, _waived


class _OwnershipRuleBase(ProjectRule):
    """Shared iteration over in-scope classes of the ownership map."""

    def _scoped_classes(self, deep: DeepContext, config: StaticcheckConfig,
                        ) -> Iterable[tuple[str, ClassOwnership,
                                            OwnershipResult]]:
        result = ownership_for(deep, config)
        for qualname in sorted(result.classes):
            ownership = result.classes[qualname]
            if config.path_matches(ownership.decl.module.path,
                                   config.ownership_scope_paths):
                yield qualname, ownership, result

    def _site_trace(self, info: FieldOwnership,
                    limit: int = 4) -> list[TraceEntry]:
        """One evidence entry per distinct (role set, function),
        showing which thread roles reach which access sites."""
        entries: list[TraceEntry] = []
        seen: set[tuple[frozenset[str], str]] = set()
        for site in sorted(info.sites, key=lambda s: (s.line, s.column)):
            key = (site.roles, site.function)
            if key in seen:
                continue
            seen.add(key)
            roles = ", ".join(sorted(site.roles))
            held = (" holding " + ", ".join(sorted(site.held))
                    if site.held else " with no lock held")
            entries.append(TraceEntry(
                path=site.path, line=site.line, function=site.function,
                note=f"{site.kind}s self.{site.attr} as [{roles}]{held}"))
            if len(entries) >= limit:
                break
        return entries


@register_deep
class CrossThreadAccessRule(_OwnershipRuleBase):
    """OWN001 — multi-role field access with no common guard."""

    rule_id = "OWN001"
    summary = ("a field reached by several thread roles must hold one "
               "common lock at every access — unsynchronized "
               "cross-thread state is a data race by construction")
    default_severity = Severity.ERROR
    waiver = ("guard it and annotate `shared(<lock>)`, or assert "
              "single-role ownership with `owned(<role>)` on the "
              "attribute (OWN003 verifies the claim); last resort "
              "`ignore[OWN001]`")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for qualname, ownership, result in self._scoped_classes(deep,
                                                                config):
            module = ownership.decl.module
            for attr in sorted(ownership.fields):
                info = ownership.fields[attr]
                if info.classification != "shared-unsynchronized":
                    continue
                if info.declared_owner is not None:
                    continue  # the claim is OWN003's to police
                anchor = self._anchor(info)
                if anchor is None:
                    continue
                roles = ", ".join(info.roles)
                yield self.finding(
                    module.path, anchor.line, anchor.column,
                    f"cross-thread access without a guard: self.{attr} "
                    f"of {ownership.decl.name} is accessed by roles "
                    f"[{roles}] and no common lock is held at every "
                    f"site; another thread can observe torn or stale "
                    f"state — guard every access with one lock (and "
                    f"annotate `shared(<lock>)`), or declare "
                    f"single-role ownership with "
                    f"`# staticcheck: owned(<role>)`",
                    trace=self._site_trace(info),
                )

    def _anchor(self, info: FieldOwnership) -> AccessSite | None:
        """Report at the first unlocked write (the publication bug),
        falling back to the first unlocked site."""
        for site in sorted(info.sites, key=lambda s: (s.line, s.column)):
            if site.kind == "write" and not site.held:
                return site
        for site in sorted(info.sites, key=lambda s: (s.line, s.column)):
            if not site.held:
                return site
        return min(info.sites, key=lambda s: (s.line, s.column),
                   default=None)


@register_deep
class ThreadEscapeRule(_OwnershipRuleBase):
    """OWN002 — ``self`` published to other threads without a sync point."""

    rule_id = "OWN002"
    summary = ("an object with thread-owned state must not be stored "
               "into a module global outside __init__ with no lock "
               "held — that publishes it to every thread without a "
               "publication point (extends PUB001 past construction)")
    default_severity = Severity.ERROR
    waiver = ("atomic(<witness>) on the store, naming the publication "
              "point (an outer mutex, a happens-before edge)")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        from repro.staticcheck.dataflow import attr_flows_for

        analyzer = attr_flows_for(deep, config)
        for qualname, ownership, result in self._scoped_classes(deep,
                                                                config):
            module = ownership.decl.module
            unshared = sorted(
                attr for attr, info in ownership.fields.items()
                if info.classification in ("exclusive",
                                           "shared-unsynchronized"))
            if not unshared:
                continue
            for method_fq in sorted(ownership.decl.methods.values()):
                method = deep.project.functions.get(method_fq)
                if method is None or method.name == "__init__":
                    continue  # __init__ escapes are PUB001's
                for line, column, note in _global_stores(method):
                    if _waived(module, line):
                        continue
                    if self._store_is_locked(analyzer, method_fq,
                                             method, line):
                        continue
                    attrs = ", ".join(f"self.{a}" for a in unshared[:4])
                    yield self.finding(
                        module.path, line, column,
                        f"thread escape: {note} from "
                        f"{method.name}() with no lock held — the "
                        f"{ownership.decl.name} becomes reachable by "
                        f"every thread, but {attrs} "
                        f"{'is' if len(unshared) == 1 else 'are'} "
                        f"thread-owned with no common guard; publish "
                        f"under a lock or waive with "
                        f"`# staticcheck: atomic(<witness>)`",
                        trace=[
                            TraceEntry(module.path, line, method_fq,
                                       note),
                            *self._owned_field_trace(ownership, unshared),
                        ],
                    )

    def _store_is_locked(self, analyzer: "object", method_fq: str,
                         method: "object", line: int) -> bool:
        """Whether any lock token is held at the storing line."""
        import ast

        node_method = method.node  # type: ignore[attr-defined]
        for node in ast.walk(node_method):
            if getattr(node, "lineno", None) != line:
                continue
            if not isinstance(node, ast.Assign):
                continue
            held = analyzer.held_at(  # type: ignore[attr-defined]
                method_fq, node)
            return bool(held)
        return False

    def _owned_field_trace(self, ownership: ClassOwnership,
                           attrs: list[str]) -> list[TraceEntry]:
        entries: list[TraceEntry] = []
        for attr in attrs[:2]:
            info = ownership.fields[attr]
            roles = ", ".join(info.roles) or MAIN_ROLE
            site = min(info.sites, key=lambda s: (s.line, s.column),
                       default=None)
            if site is None:
                continue
            entries.append(TraceEntry(
                path=site.path, line=site.line, function=site.function,
                note=f"self.{attr} is {info.classification} "
                     f"[{roles}] here"))
        return entries


@register_deep
class OwnershipDriftRule(_OwnershipRuleBase):
    """OWN003 — ``owned``/``shared`` annotations vs the inferred map."""

    rule_id = "OWN003"
    summary = ("`owned(<role>)` / `shared(<lock>)` annotations must "
               "match the inferred ownership map — a stale claim "
               "silences real races (LCK001 and the runtime witness "
               "trust it)")
    default_severity = Severity.ERROR
    waiver = ("none: fix the annotation or the code — drift is the "
              "finding")

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for qualname, ownership, result in self._scoped_classes(deep,
                                                                config):
            module = ownership.decl.module
            for attr in sorted(ownership.fields):
                info = ownership.fields[attr]
                line = info.annotation_line or 1
                if info.declared_owner is not None:
                    yield from self._check_owned(module, ownership,
                                                 info, result, line)
                if info.declared_shared:
                    yield from self._check_shared(module, ownership,
                                                  info, line)

    def _check_owned(self, module: "object", ownership: ClassOwnership,
                     info: FieldOwnership, result: OwnershipResult,
                     line: int) -> Iterable[Finding]:
        path = ownership.decl.module.path
        role = info.declared_owner
        assert role is not None
        known = role == MAIN_ROLE or role in result.roles
        if not known:
            names = ", ".join([MAIN_ROLE, *sorted(result.roles)])
            yield self.finding(
                path, line, 0,
                f"ownership drift: self.{info.attr} is annotated "
                f"`owned({role})` but no thread-start site declares a "
                f"role named {role!r} (known roles: {names}) — fix the "
                f"role name or remove the annotation")
            return
        foreign = [r for r in info.roles if r != role]
        if info.classification in ("exclusive", "handoff") and not foreign:
            return
        if not foreign:
            return
        roles = ", ".join(info.roles)
        yield self.finding(
            path, line, 0,
            f"ownership drift: self.{info.attr} is annotated "
            f"`owned({role})` but the inferred map classifies it "
            f"{info.classification} with roles [{roles}] — the field "
            f"is no longer single-role; guard it (and annotate "
            f"`shared(<lock>)`) or restore exclusive ownership",
            trace=self._site_trace(info),
        )

    def _check_shared(self, module: "object", ownership: ClassOwnership,
                      info: FieldOwnership,
                      line: int) -> Iterable[Finding]:
        path = ownership.decl.module.path
        if info.classification != "guarded" or info.guard is None:
            return
        # Every lock attr held at ALL accesses: the declared lock only
        # drifts when it is in none of them (holding a second, outer
        # lock alongside the declared one is fine).
        common: set[str] | None = None
        for site in info.sites:
            held = set(site.held)
            common = held if common is None else (common & held)
        common_attrs = {token.rsplit(".", 1)[-1] for token in common or ()}
        wraps = ownership.decl.condition_wraps
        declared = {wraps.get(arg, arg) for arg in info.declared_shared}
        if declared & common_attrs:
            return
        guard_attr = info.guard.rsplit(".", 1)[-1]
        args = ", ".join(info.declared_shared)
        yield self.finding(
            path, line, 0,
            f"ownership drift: self.{info.attr} is annotated "
            f"`shared({args})` but every cross-thread access actually "
            f"holds self.{guard_attr} — the annotation names the wrong "
            f"lock, so LCK001 is policing a guard nobody uses; update "
            f"it to `shared({guard_attr})`",
            trace=self._site_trace(info),
        )
