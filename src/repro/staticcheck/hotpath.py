"""Hot-path propagation over the call graph.

A *hot root* is a function annotated ``# staticcheck: hotpath`` — a
sensor entry point, the execute loop, a ring-buffer operation, a
daemon flush.  Hotness propagates from every root along resolved,
project-internal call edges: anything a hot function calls runs on the
per-statement path too, so the PRF rules police it with the same
budget.

Propagation stops at functions annotated
``# staticcheck: coldpath(<witness>)`` — deliberately off the per-call
path (a cache-miss slow path, a failure handler).  The witness is
mandatory; a bare ``coldpath()`` is ignored so that a waiver can never
be an accident.

Every hot function carries *provenance*: the trace of call sites from
its root, attached to PRF findings (and serialized in JSON schema v4's
``hot_root``) so a reviewer can see why the analyzer considers a line
hot without re-deriving the call chain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.staticcheck.callgraph import ProjectContext
from repro.staticcheck.findings import TraceEntry

_MAX_DEPTH = 20


@dataclass
class HotPathResult:
    """Which functions are hot, and the evidence chain for each."""

    roots: tuple[str, ...] = ()
    """Qualnames annotated ``hotpath``, sorted."""

    hot: dict[str, tuple[TraceEntry, ...]] = field(default_factory=dict)
    """Hot function qualname -> provenance (root declaration first,
    then one entry per call edge on the shortest chain found)."""

    cold: dict[str, str] = field(default_factory=dict)
    """Qualnames with a witnessed ``coldpath`` -> the witness."""

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.hot

    def root_of(self, qualname: str) -> str | None:
        """The hot root whose propagation reached ``qualname``."""
        trace = self.hot.get(qualname)
        if not trace:
            return None
        return trace[0].function


def compute_hotpaths(project: ProjectContext) -> HotPathResult:
    """Breadth-first hotness propagation from every annotated root.

    BFS means the recorded provenance is a *shortest* call chain, which
    keeps finding traces reviewable even in a dense graph.
    """
    result = HotPathResult()
    roots: list[str] = []
    for fq, decl in project.functions.items():
        cold = decl.module.function_directive(decl.node, "coldpath")
        if cold is not None and cold.args:
            result.cold[fq] = ", ".join(cold.args)
        if decl.module.function_directive(decl.node, "hotpath") is not None:
            roots.append(fq)
    result.roots = tuple(sorted(roots))

    queue: deque[tuple[str, int]] = deque()
    for fq in result.roots:
        if fq in result.cold:
            continue  # hotpath + witnessed coldpath: coldpath wins
        decl = project.functions[fq]
        result.hot[fq] = (TraceEntry(
            path=decl.module.path, line=decl.node.lineno,
            function=fq, note="declared hotpath root"),)
        queue.append((fq, 0))

    while queue:
        fq, depth = queue.popleft()
        if depth >= _MAX_DEPTH:
            continue
        caller_decl = project.functions[fq]
        for edge in project.calls_from(fq):
            if edge.external or edge.callee not in project.functions:
                continue
            if edge.callee in result.hot or edge.callee in result.cold:
                continue
            step = TraceEntry(
                path=caller_decl.module.path, line=edge.line,
                function=fq, note=f"hot call to {edge.callee}()")
            result.hot[edge.callee] = (*result.hot[fq], step)
            queue.append((edge.callee, depth + 1))
    return result


def hotpaths_for(deep) -> HotPathResult:  # type: ignore[no-untyped-def]
    """The shared per-project result, computed on first use.

    ``deep`` is a :class:`~repro.staticcheck.lockflow.DeepContext`;
    untyped here because lockflow imports would be circular.
    """
    if deep.hotpaths is None:
        deep.hotpaths = compute_hotpaths(deep.project)
    return deep.hotpaths
