"""Text and JSON rendering of findings (and JSON parsing back)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.staticcheck.findings import Finding

JSON_VERSION = 6
"""Version 6 adds the optional top-level ``domains`` key: the
integer-domain map (``repro lint --domain-map``) — the inferred
domain of every typed parameter, return and field from the lattice
the DOM rules check (``local_seq``/``encoded_seq``/``src_seq``/
``shard_id``/``shard_index``/``session_id``), plus the seeding
tables.  Version 5 added the optional top-level ``ownership`` key: the
thread-ownership map (``repro lint --ownership-map``) — inferred
thread roles plus a per-class, per-field
``exclusive``/``guarded``/``handoff``/``shared-unsynchronized``
classification the OWN rules and the runtime access witness consume.
Version 4 added the optional per-finding ``hot_root`` key: hotness
provenance on PRF findings — the qualname of the ``hotpath`` root whose
propagation made the reported line hot (the finding's ``trace`` is the
call chain from that root).  Version 3 added the ``timings`` table (one
row per rule: accumulated seconds, plus budget ceiling and over-budget
flag when ``--budget`` is enforced) and the optional ``cache`` summary
(shallow hits/analyzed, deep-from-cache).  Version 2 added the
``trace`` key (interprocedural evidence chain) to every finding;
version-1 payloads (no trace) still parse."""

_ACCEPTED_VERSIONS = frozenset({1, 2, 3, 4, 5, JSON_VERSION})

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Finding severity -> SARIF result level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_text(findings: list[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "staticcheck: no findings"
    lines = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"staticcheck: {len(findings)} {noun} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: list[Finding],
                timings: list[dict[str, Any]] | None = None,
                cache: dict[str, Any] | None = None,
                ownership: dict[str, Any] | None = None,
                domains: dict[str, Any] | None = None) -> str:
    """Machine-readable report; round-trips through :func:`parse_json`.

    ``timings`` is the per-rule table from
    :meth:`~repro.staticcheck.driver.AnalysisStats.timing_rows`;
    ``cache`` is a :meth:`~repro.staticcheck.cache.CacheStats.to_dict`
    summary, present only when a cache was in play; ``ownership`` is an
    :meth:`~repro.staticcheck.ownership.OwnershipResult.to_json` map
    and ``domains`` a
    :meth:`~repro.staticcheck.domains.DomainResult.to_json` map, each
    present only when its phase ran.
    """
    payload: dict[str, Any] = {
        "version": JSON_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "timings": timings if timings is not None else [],
    }
    if cache is not None:
        payload["cache"] = cache
    if ownership is not None:
        payload["ownership"] = ownership
    if domains is not None:
        payload["domains"] = domains
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(findings: list[Finding]) -> str:
    """SARIF 2.1.0 report for code-scanning UIs (CI upload).

    One run, one ``tool.driver`` listing every rule that fired (id,
    summary, default severity); each finding becomes a ``result`` with
    the evidence trace flattened into ``relatedLocations``.
    """
    from repro.staticcheck.base import all_deep_rules, all_rules

    docs = {rule.rule_id: rule.summary
            for rule in (*all_rules(), *all_deep_rules())}
    fired = sorted({finding.rule_id for finding in findings})
    rules_json = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": docs.get(rule_id, rule_id)},
        }
        for rule_id in fired
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(fired)}
    results = []
    for finding in findings:
        result: dict[str, Any] = {
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": _SARIF_LEVELS.get(finding.severity.value, "warning"),
            "message": {"text": finding.message},
            "locations": [_sarif_location(
                finding.path, finding.line, finding.column + 1)],
        }
        if finding.trace:
            result["relatedLocations"] = [
                {
                    **_sarif_location(entry.path, entry.line, 1),
                    "message": {"text": f"{entry.function}: {entry.note}"},
                }
                for entry in finding.trace
            ]
        results.append(result)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-staticcheck",
                        "informationUri":
                            "https://example.invalid/repro-staticcheck",
                        "rules": rules_json,
                    },
                },
                "results": results,
            },
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_location(path: str, line: int, column: int) -> dict[str, Any]:
    from pathlib import Path

    return {
        "physicalLocation": {
            "artifactLocation": {"uri": Path(path).as_posix()},
            "region": {"startLine": max(line, 1),
                       "startColumn": max(column, 1)},
        },
    }


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError("not a staticcheck JSON report")
    version = data.get("version")
    if version not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported staticcheck report version: "
                         f"{version!r}")
    return [Finding.from_dict(entry) for entry in data["findings"]]
