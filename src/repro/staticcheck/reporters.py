"""Text and JSON rendering of findings (and JSON parsing back)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any

from repro.staticcheck.findings import Finding

JSON_VERSION = 4
"""Version 4 adds the optional per-finding ``hot_root`` key: hotness
provenance on PRF findings — the qualname of the ``hotpath`` root whose
propagation made the reported line hot (the finding's ``trace`` is the
call chain from that root).  Version 3 added the ``timings`` table (one
row per rule: accumulated seconds, plus budget ceiling and over-budget
flag when ``--budget`` is enforced) and the optional ``cache`` summary
(shallow hits/analyzed, deep-from-cache).  Version 2 added the
``trace`` key (interprocedural evidence chain) to every finding;
version-1 payloads (no trace) still parse."""

_ACCEPTED_VERSIONS = frozenset({1, 2, 3, JSON_VERSION})


def render_text(findings: list[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "staticcheck: no findings"
    lines = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"staticcheck: {len(findings)} {noun} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: list[Finding],
                timings: list[dict[str, Any]] | None = None,
                cache: dict[str, Any] | None = None) -> str:
    """Machine-readable report; round-trips through :func:`parse_json`.

    ``timings`` is the per-rule table from
    :meth:`~repro.staticcheck.driver.AnalysisStats.timing_rows`;
    ``cache`` is a :meth:`~repro.staticcheck.cache.CacheStats.to_dict`
    summary, present only when a cache was in play.
    """
    payload: dict[str, Any] = {
        "version": JSON_VERSION,
        "findings": [finding.to_dict() for finding in findings],
        "timings": timings if timings is not None else [],
    }
    if cache is not None:
        payload["cache"] = cache
    return json.dumps(payload, indent=2, sort_keys=True)


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError("not a staticcheck JSON report")
    version = data.get("version")
    if version not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported staticcheck report version: "
                         f"{version!r}")
    return [Finding.from_dict(entry) for entry in data["findings"]]
