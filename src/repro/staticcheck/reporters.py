"""Text and JSON rendering of findings (and JSON parsing back)."""

from __future__ import annotations

import json
from collections import Counter

from repro.staticcheck.findings import Finding

JSON_VERSION = 2
"""Version 2 adds the ``trace`` key (interprocedural evidence chain)
to every finding; version-1 payloads (no trace) still parse."""

_ACCEPTED_VERSIONS = frozenset({1, JSON_VERSION})


def render_text(findings: list[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    if not findings:
        return "staticcheck: no findings"
    lines = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    breakdown = ", ".join(
        f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"staticcheck: {len(findings)} {noun} ({breakdown})")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report; round-trips through :func:`parse_json`."""
    return json.dumps(
        {
            "version": JSON_VERSION,
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
        sort_keys=True,
    )


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json`."""
    data = json.loads(text)
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError("not a staticcheck JSON report")
    version = data.get("version")
    if version not in _ACCEPTED_VERSIONS:
        raise ValueError(f"unsupported staticcheck report version: "
                         f"{version!r}")
    return [Finding.from_dict(entry) for entry in data["findings"]]
