"""The analysis driver: file discovery, parsing, rule dispatch.

:class:`ModuleContext` bundles everything a rule needs about one file —
source, AST, parent links, import aliases and parsed annotations — so
each rule stays a pure AST visitor.  :func:`analyze_paths` walks the
given files/directories, runs every registered rule, applies
``ignore`` suppressions and returns findings sorted by location.

Both phases optionally take an :class:`~repro.staticcheck.cache.
AnalysisCache` (skip files/programs whose content hashes match a
previous run) and an :class:`AnalysisStats` accumulator (per-rule
wall time, measured with ``time.perf_counter`` — duration-only, so
CLK-legal — and cache hit counts); :func:`budget_findings` turns the
accumulated timings into BGT001 findings for rules over their
configured ceiling.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.staticcheck.annotations import (
    AnnotationError,
    Directive,
    parse_annotations,
)
from repro.staticcheck.astutil import build_parent_map, import_aliases
from repro.staticcheck.base import (
    ProjectRule,
    Rule,
    all_deep_rules,
    all_rules,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.cache import AnalysisCache

SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class ModuleContext:
    """Parsed view of one analyzed source file."""

    path: str
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)
    annotations: dict[int, list[Directive]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            parents=build_parent_map(tree),
            aliases=import_aliases(tree),
            annotations=parse_annotations(source),
        )

    def directives(self, line: int, name: str) -> list[Directive]:
        """Directives called ``name`` attached to ``line``."""
        return [d for d in self.annotations.get(line, []) if d.name == name]

    def function_directive(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                           name: str) -> Directive | None:
        """A directive on the ``def`` line or the line directly above
        it (where a decorator or a standalone comment would sit)."""
        for line in (node.lineno, node.lineno - 1):
            found = self.directives(line, name)
            if found:
                return found[0]
        return None

    def suppressed(self, finding: Finding) -> bool:
        """True when an ``ignore`` directive on the finding's line (or
        the line above, for multi-line statements) covers its rule."""
        for line in (finding.line, finding.line - 1):
            for directive in self.directives(line, "ignore"):
                if not directive.args or finding.rule_id in directive.args:
                    return True
        return False


@dataclass
class AnalysisStats:
    """Per-run accounting: rule wall time and cache behaviour."""

    timings: dict[str, float] = field(default_factory=dict)
    """rule id -> accumulated analysis seconds across all files."""
    budgets: dict[str, float] = field(default_factory=dict)
    """rule id -> enforced ceiling (filled by :func:`budget_findings`)."""
    cache: "AnalysisCache | None" = None

    def add_timing(self, rule_id: str, seconds: float) -> None:
        self.timings[rule_id] = self.timings.get(rule_id, 0.0) + seconds

    def timing_rows(self) -> list[dict[str, object]]:
        """The JSON report's ``timings`` table, one row per rule."""
        rows: list[dict[str, object]] = []
        for rule_id in sorted(self.timings):
            row: dict[str, object] = {
                "rule_id": rule_id,
                "seconds": round(self.timings[rule_id], 6),
            }
            if rule_id in self.budgets:
                row["budget_s"] = self.budgets[rule_id]
                row["over_budget"] = (
                    self.timings[rule_id] > self.budgets[rule_id])
            rows.append(row)
        return rows


def budget_findings(stats: AnalysisStats,
                    config: StaticcheckConfig) -> list[Finding]:
    """BGT001 findings for every rule whose accumulated wall time
    exceeds its configured ceiling (``--budget`` enforcement).  Also
    records the enforced ceilings on ``stats`` for the timing table."""
    findings: list[Finding] = []
    for rule_id in sorted(stats.timings):
        ceiling = config.rule_budget_s(rule_id)
        stats.budgets[rule_id] = ceiling
        spent = stats.timings[rule_id]
        if spent > ceiling:
            findings.append(Finding(
                path="<staticcheck>",
                line=1,
                column=0,
                rule_id="BGT001",
                severity=Severity.ERROR,
                message=(
                    f"rule {rule_id} spent {spent:.3f}s, over its "
                    f"{ceiling:.3f}s budget; tighten the rule, raise "
                    f"rule_budget_overrides, or shrink its scope"),
            ))
    return findings


def iter_python_files(paths: Sequence[Path | str]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for given in paths:
        root = Path(given)
        if root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        else:
            candidates = [root]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_source(path: str, source: str,
                   config: StaticcheckConfig | None = None,
                   rules: Sequence[Rule] | None = None,
                   *, stats: AnalysisStats | None = None) -> list[Finding]:
    """Run the rules over one in-memory module."""
    config = config or StaticcheckConfig()
    try:
        module = ModuleContext.from_source(path, source)
    except SyntaxError as error:
        return [Finding(
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
            rule_id="PARSE",
            severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
        )]
    except AnnotationError as error:
        return [Finding(
            path=path, line=1, column=0, rule_id="ANN",
            severity=Severity.ERROR, message=str(error),
        )]
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        started = time.perf_counter()
        for finding in rule.check(module, config):
            if not module.suppressed(finding):
                findings.append(finding)
        if stats is not None:
            stats.add_timing(rule.rule_id,
                             time.perf_counter() - started)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def analyze_paths(paths: Sequence[Path | str],
                  config: StaticcheckConfig | None = None,
                  rules: Sequence[Rule] | None = None,
                  *, cache: "AnalysisCache | None" = None,
                  stats: AnalysisStats | None = None) -> list[Finding]:
    """Run the rules over every Python file under ``paths``.

    With a ``cache``, files whose content hash matches a stored entry
    replay their findings without being parsed or analyzed; the cache
    is bypassed when an explicit ``rules`` subset is given (cached
    results would not correspond to it).
    """
    from repro.staticcheck.cache import content_hash

    use_cache = cache if rules is None else None
    if stats is not None and cache is not None:
        stats.cache = cache
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            findings.append(Finding(
                path=str(path), line=1, column=0, rule_id="IO",
                severity=Severity.ERROR,
                message=f"cannot read file: {error}",
            ))
            continue
        if use_cache is not None:
            digest = content_hash(source)
            cached = use_cache.shallow_lookup(str(path), digest)
            if cached is not None:
                findings.extend(cached)
                continue
            computed = analyze_source(str(path), source, config,
                                      rules, stats=stats)
            use_cache.shallow_store(str(path), digest, computed)
            findings.extend(computed)
            continue
        findings.extend(
            analyze_source(str(path), source, config, rules,
                           stats=stats))
    findings.sort(key=lambda f: f.sort_key)
    return findings


def analyze_project(paths: Sequence[Path | str],
                    config: StaticcheckConfig | None = None,
                    rules: Sequence[ProjectRule] | None = None,
                    *, cache: "AnalysisCache | None" = None,
                    stats: AnalysisStats | None = None,
                    ) -> list[Finding]:
    """The ``--deep`` phase: whole-program rules over the call graph.

    Files that do not parse are skipped silently here — the shallow
    phase already reports ``PARSE`` for them, and a partial program is
    still worth analyzing.

    Deep findings cache as a whole set: with a ``cache``, the stored
    findings are replayed — and nothing is parsed — only when every
    analyzed file's content hash matches the previous run exactly.
    As in :func:`analyze_paths`, an explicit ``rules`` subset bypasses
    the cache.
    """
    # Imported here: callgraph/lockflow import this module for
    # ModuleContext, so a top-level import would be circular.
    from repro.staticcheck.cache import content_hash
    from repro.staticcheck.callgraph import build_project
    from repro.staticcheck.dataflow import file_dependencies
    from repro.staticcheck.lockflow import DeepContext, LockFlow

    config = config or StaticcheckConfig()
    use_cache = cache if rules is None else None
    if stats is not None and cache is not None:
        stats.cache = cache
    sources: dict[str, str] = {}
    for path in iter_python_files(paths):
        try:
            sources[str(path)] = path.read_text(encoding="utf-8")
        except OSError:
            continue
    hashes = {path: content_hash(source)
              for path, source in sources.items()}
    if use_cache is not None:
        cached = use_cache.deep_lookup(hashes)
        if cached is not None:
            return cached
    modules: list[ModuleContext] = []
    for path, source in sources.items():
        try:
            modules.append(ModuleContext.from_source(path, source))
        except (SyntaxError, AnnotationError):
            hashes.pop(path, None)
            continue
    project = build_project(modules)
    lockflow = LockFlow(project, config).analyze()
    deep = DeepContext(project=project, lockflow=lockflow)
    by_path = {module.path: module for module in modules}
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_deep_rules()):
        started = time.perf_counter()
        for finding in rule.check_project(deep, config):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding):
                continue
            findings.append(finding)
        if stats is not None:
            stats.add_timing(rule.rule_id,
                             time.perf_counter() - started)
    findings.sort(key=lambda f: f.sort_key)
    if use_cache is not None:
        use_cache.deep_store(hashes, findings,
                             file_dependencies(project))
    return findings
