"""The analysis driver: file discovery, parsing, rule dispatch.

:class:`ModuleContext` bundles everything a rule needs about one file —
source, AST, parent links, import aliases and parsed annotations — so
each rule stays a pure AST visitor.  :func:`analyze_paths` walks the
given files/directories, runs every registered rule, applies
``ignore`` suppressions and returns findings sorted by location.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.staticcheck.annotations import (
    AnnotationError,
    Directive,
    parse_annotations,
)
from repro.staticcheck.astutil import build_parent_map, import_aliases
from repro.staticcheck.base import (
    ProjectRule,
    Rule,
    all_deep_rules,
    all_rules,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import Finding, Severity

SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class ModuleContext:
    """Parsed view of one analyzed source file."""

    path: str
    source: str
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    aliases: dict[str, str] = field(default_factory=dict)
    annotations: dict[int, list[Directive]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            parents=build_parent_map(tree),
            aliases=import_aliases(tree),
            annotations=parse_annotations(source),
        )

    def directives(self, line: int, name: str) -> list[Directive]:
        """Directives called ``name`` attached to ``line``."""
        return [d for d in self.annotations.get(line, []) if d.name == name]

    def function_directive(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                           name: str) -> Directive | None:
        """A directive on the ``def`` line or the line directly above
        it (where a decorator or a standalone comment would sit)."""
        for line in (node.lineno, node.lineno - 1):
            found = self.directives(line, name)
            if found:
                return found[0]
        return None

    def suppressed(self, finding: Finding) -> bool:
        """True when an ``ignore`` directive on the finding's line (or
        the line above, for multi-line statements) covers its rule."""
        for line in (finding.line, finding.line - 1):
            for directive in self.directives(line, "ignore"):
                if not directive.args or finding.rule_id in directive.args:
                    return True
        return False


def iter_python_files(paths: Sequence[Path | str]) -> Iterable[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for given in paths:
        root = Path(given)
        if root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (set(p.parts) & SKIP_DIRS)
            )
        else:
            candidates = [root]
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def analyze_source(path: str, source: str,
                   config: StaticcheckConfig | None = None,
                   rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run the rules over one in-memory module."""
    config = config or StaticcheckConfig()
    try:
        module = ModuleContext.from_source(path, source)
    except SyntaxError as error:
        return [Finding(
            path=path,
            line=error.lineno or 1,
            column=(error.offset or 1) - 1,
            rule_id="PARSE",
            severity=Severity.ERROR,
            message=f"file does not parse: {error.msg}",
        )]
    except AnnotationError as error:
        return [Finding(
            path=path, line=1, column=0, rule_id="ANN",
            severity=Severity.ERROR, message=str(error),
        )]
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        for finding in rule.check(module, config):
            if not module.suppressed(finding):
                findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings


def analyze_paths(paths: Sequence[Path | str],
                  config: StaticcheckConfig | None = None,
                  rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run the rules over every Python file under ``paths``."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            findings.append(Finding(
                path=str(path), line=1, column=0, rule_id="IO",
                severity=Severity.ERROR,
                message=f"cannot read file: {error}",
            ))
            continue
        findings.extend(
            analyze_source(str(path), source, config, rules))
    findings.sort(key=lambda f: f.sort_key)
    return findings


def analyze_project(paths: Sequence[Path | str],
                    config: StaticcheckConfig | None = None,
                    rules: Sequence[ProjectRule] | None = None,
                    ) -> list[Finding]:
    """The ``--deep`` phase: whole-program rules over the call graph.

    Files that do not parse are skipped silently here — the shallow
    phase already reports ``PARSE`` for them, and a partial program is
    still worth analyzing.
    """
    # Imported here: callgraph/lockflow import this module for
    # ModuleContext, so a top-level import would be circular.
    from repro.staticcheck.callgraph import build_project
    from repro.staticcheck.lockflow import DeepContext, LockFlow

    config = config or StaticcheckConfig()
    modules: list[ModuleContext] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            modules.append(ModuleContext.from_source(str(path), source))
        except (OSError, SyntaxError, AnnotationError):
            continue
    project = build_project(modules)
    lockflow = LockFlow(project, config).analyze()
    deep = DeepContext(project=project, lockflow=lockflow)
    by_path = {module.path: module for module in modules}
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_deep_rules()):
        for finding in rule.check_project(deep, config):
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: f.sort_key)
    return findings
