"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator


def build_parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Map every node to its parent (identity-keyed via the node)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted_segments(node: ast.expr) -> list[str] | None:
    """``a.b.c(...)``'s func as ``["a", "b", "c"]``; None if not a plain
    name/attribute chain (e.g. a subscript or call in the middle)."""
    segments: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        segments.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    segments.append(current.id)
    segments.reverse()
    return segments


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> fully qualified imported name, for the module.

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never bring in stdlib time
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


def self_attribute(node: ast.expr) -> str | None:
    """Return ``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST],
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Nearest enclosing function/method definition, if any."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def ancestors(node: ast.AST,
              parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """Yield parents from the immediate one up to the module."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)
