"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator


def build_parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Map every node to its parent (identity-keyed via the node)."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def dotted_segments(node: ast.expr) -> list[str] | None:
    """``a.b.c(...)``'s func as ``["a", "b", "c"]``; None if not a plain
    name/attribute chain (e.g. a subscript or call in the middle)."""
    segments: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        segments.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    segments.append(current.id)
    segments.reverse()
    return segments


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Local name -> fully qualified imported name, for the module.

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime as dt`` maps ``dt -> datetime.datetime``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                target = name.name if name.asname else name.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never bring in stdlib time
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "discard",
    "remove", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "move_to_end", "sort", "reverse",
})


def self_attribute(node: ast.expr) -> str | None:
    """Return ``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def enclosing_function(
    node: ast.AST, parents: dict[ast.AST, ast.AST],
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Nearest enclosing function/method definition, if any."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def ancestors(node: ast.AST,
              parents: dict[ast.AST, ast.AST]) -> Iterator[ast.AST]:
    """Yield parents from the immediate one up to the module."""
    current = parents.get(node)
    while current is not None:
        yield current
        current = parents.get(current)


def expand_targets(target: ast.expr) -> Iterator[ast.expr]:
    """Flatten tuple/list unpacking targets into leaf targets."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from expand_targets(element)
    elif isinstance(target, ast.Starred):
        yield from expand_targets(target.value)
    else:
        yield target


def target_attr(target: ast.expr) -> str | None:
    """``self.attr``, ``self.attr[i]`` or ``self.attr.field`` as the
    mutated attribute ``attr``; None for non-self targets."""
    while isinstance(target, ast.Subscript):
        target = target.value
    attr = self_attribute(target)
    if attr is not None:
        return attr
    if isinstance(target, ast.Attribute):
        # self.attr.field = x mutates the object held in self.attr
        return self_attribute(target.value)
    return None


def mutated_attr(node: ast.AST) -> tuple[str, ast.AST] | None:
    """If ``node`` mutates ``self.<attr>``, return (attr, location).

    Recognised: plain/augmented/annotated assignment to ``self.attr``
    (including subscripted and dotted forms), ``del self.attr`` and
    calls of known in-place container mutators
    (``self.attr.append(...)``, ``.pop``, ``.clear``, ...).
    """
    if isinstance(node, ast.Assign):
        for target in node.targets:
            for leaf in expand_targets(target):
                attr = target_attr(leaf)
                if attr is not None:
                    return attr, node
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = target_attr(node.target)
        if attr is not None and not (
                isinstance(node, ast.AnnAssign) and node.value is None):
            return attr, node
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = target_attr(target)
            if attr is not None:
                return attr, node
    elif isinstance(node, ast.Call):
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS):
            attr = self_attribute(func.value)
            if attr is not None:
                return attr, node
    return None


def attr_reads(expr: ast.AST) -> set[str]:
    """Names of every ``self.<attr>`` read inside ``expr``."""
    reads: set[str] = set()
    for node in ast.walk(expr):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)):
            attr = self_attribute(node)
            if attr is not None:
                reads.add(attr)
    return reads
