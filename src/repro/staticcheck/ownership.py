"""Thread-ownership analysis: who owns which field, proven from source.

The lock rules (LCK/ATM/PUB) fire where locks are *present*; state that
is racy precisely because nobody ever locks it is invisible to them.
This phase closes that gap with a whole-program thread-role model:

* **Thread roles** — every ``threading.Thread(target=..., name=...)``
  construction site found in the program declares a role, named after
  the thread's ``name=`` constant (``repro-storage-daemon``) or, when
  unnamed, after the target's qualname.  ``main`` is the implicit
  foreground role, seeded at every function that is neither a thread
  target nor called from anywhere inside the program (public entry
  points, CLI commands, test surface).
* **Role propagation** — breadth-first from every root along resolved,
  project-internal call edges (the same graph hot-path propagation
  uses), so a method reachable from both the daemon's run loop and a
  foreground ``stop()`` carries both roles.  BFS keeps the recorded
  provenance a shortest call chain per (function, role).
* **Field classification** — joining the per-method roles with every
  ``self.<attr>`` read/write site (and the lock tokens held there, via
  the dataflow layer) classifies each class field:

  - ``exclusive`` — accessed by exactly one role after construction;
  - ``guarded`` — accessed by several roles, every site holding one
    common lock token (the publication discipline LCK001 enforces);
  - ``handoff`` — written only during ``__init__`` (one role,
    before the owning thread starts) and read afterwards;
  - ``shared-unsynchronized`` — several roles, no common guard: the
    finding OWN001 exists for;
  - ``synchronized`` — the attribute *is* a synchronization primitive
    (Lock/Event/Queue); its own internals are thread-safe.

The result is exported as the *ownership map* (``repro lint
--ownership-map``, JSON schema v5) and corroborated at runtime by
:mod:`repro.core.accesswitness`, which records which threads actually
touch annotated fields during the chaos soak and cross-checks the
observations against this map.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.staticcheck.astutil import mutated_attr, self_attribute
from repro.staticcheck.callgraph import (
    ClassDecl,
    FunctionDecl,
    ProjectContext,
    _external_dotted,
    _local_types,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import TraceEntry
from repro.staticcheck.lockflow import LOCK_TYPES

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.lockflow import DeepContext

MAIN_ROLE = "main"

_MAX_DEPTH = 20

#: Attribute types that are synchronization primitives themselves:
#: cross-thread access to them is the point, not a race.
SYNC_TYPES = LOCK_TYPES | frozenset({
    "threading.Event",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "threading.Barrier",
    "threading.local",
    "queue.Queue",
    "queue.SimpleQueue",
})

#: Thread-handle types: the handle is managed by whoever starts/joins
#: the thread, not by the thread it names.
_THREAD_HANDLE_TYPES = frozenset({"threading.Thread"})


@dataclass(frozen=True)
class ThreadStartSite:
    """One ``threading.Thread(...)`` construction found in the program."""

    role: str
    """Role name: the ``name=`` constant, or the target qualname."""
    path: str
    line: int
    function: str
    """Qualname of the function containing the construction."""
    target: str | None
    """Resolved qualname of the thread's entry function, when the
    ``target=`` expression could be typed; None otherwise."""


@dataclass
class AccessSite:
    """One read or write of ``self.<attr>`` inside a method body."""

    attr: str
    function: str
    path: str
    line: int
    column: int
    kind: str
    """``"read"`` or ``"write"``."""
    roles: frozenset[str]
    held: frozenset[str]
    """Lock tokens held at the site (lexical + entry fixpoint)."""
    in_init: bool


@dataclass
class FieldOwnership:
    """The inferred ownership of one class attribute."""

    attr: str
    classification: str
    """``exclusive`` | ``guarded`` | ``handoff`` |
    ``shared-unsynchronized`` | ``synchronized``."""
    roles: tuple[str, ...] = ()
    """Roles observed at non-``__init__`` access sites, sorted."""
    guard: str | None = None
    """Common lock token, for ``guarded`` fields."""
    sites: list[AccessSite] = field(default_factory=list)
    """Non-``__init__`` access sites (evidence for the OWN rules)."""
    init_writes: int = 0
    declared_owner: str | None = None
    """Role from an ``owned(<role>)`` annotation on the attribute."""
    declared_shared: tuple[str, ...] = ()
    """Lock args from a ``shared(...)`` annotation on the attribute."""
    annotation_line: int | None = None

    @property
    def reads(self) -> int:
        return sum(1 for s in self.sites if s.kind == "read")

    @property
    def writes(self) -> int:
        return sum(1 for s in self.sites if s.kind == "write")


@dataclass
class ClassOwnership:
    """Ownership map of one class's fields."""

    decl: ClassDecl
    fields: dict[str, FieldOwnership] = field(default_factory=dict)


@dataclass
class OwnershipResult:
    """What the thread-ownership phase computed for a program."""

    roles: dict[str, ThreadStartSite] = field(default_factory=dict)
    """Role name -> the start site that declares it (``main`` absent:
    it is implicit)."""
    function_roles: dict[str, frozenset[str]] = field(default_factory=dict)
    """Function qualname -> roles whose threads can execute it."""
    provenance: dict[str, dict[str, tuple[TraceEntry, ...]]] = \
        field(default_factory=dict)
    """Function qualname -> role -> shortest call chain from that
    role's root (evidence for findings)."""
    classes: dict[str, ClassOwnership] = field(default_factory=dict)

    def roles_of(self, qualname: str) -> frozenset[str]:
        """Roles of a function; unreached functions default to
        ``main`` — an unresolved caller is foreground until proven
        otherwise, which errs toward reporting cross-thread pairs."""
        found = self.function_roles.get(qualname)
        if not found:
            return frozenset({MAIN_ROLE})
        return found

    def field_index(self) -> dict[str, FieldOwnership]:
        """``<ClassQualname>.<attr>`` token -> ownership, the namespace
        the runtime access witness records under."""
        index: dict[str, FieldOwnership] = {}
        for class_qualname, ownership in self.classes.items():
            for attr, info in ownership.fields.items():
                index[f"{class_qualname}.{attr}"] = info
        return index

    def to_json(self) -> dict[str, Any]:
        """The ownership-map artifact (``repro lint --ownership-map``)."""
        roles: dict[str, Any] = {
            MAIN_ROLE: {"kind": "entry", "note": "foreground callers"},
        }
        for name, site in sorted(self.roles.items()):
            roles[name] = {
                "kind": "thread",
                "start_site": f"{site.path}:{site.line}",
                "started_by": site.function,
                "target": site.target,
            }
        classes: dict[str, Any] = {}
        for qualname in sorted(self.classes):
            ownership = self.classes[qualname]
            fields_json: dict[str, Any] = {}
            for attr in sorted(ownership.fields):
                info = ownership.fields[attr]
                entry: dict[str, Any] = {
                    "classification": info.classification,
                    "roles": list(info.roles),
                    "reads": info.reads,
                    "writes": info.writes,
                    "init_writes": info.init_writes,
                }
                if info.guard is not None:
                    entry["guard"] = info.guard
                if info.declared_owner is not None:
                    entry["declared_owner"] = info.declared_owner
                if info.declared_shared:
                    entry["declared_shared"] = list(info.declared_shared)
                fields_json[attr] = entry
            classes[qualname] = {
                "path": ownership.decl.module.path,
                "fields": fields_json,
            }
        return {
            "generated_by": "repro.staticcheck.ownership",
            "version": 1,
            "roles": roles,
            "classes": classes,
        }


# -- thread-start discovery ---------------------------------------------------


def thread_start_sites(project: ProjectContext) -> list[ThreadStartSite]:
    """Every ``threading.Thread(...)`` construction in the program,
    with its role name and (when resolvable) target qualname."""
    sites: list[ThreadStartSite] = []
    for fq, decl in project.functions.items():
        for node in ast.walk(decl.node):
            if not isinstance(node, ast.Call):
                continue
            if not _is_thread_ctor(decl, node):
                continue
            target = _resolve_target(project, decl, node)
            name = _thread_name(node)
            if name is None:
                name = (f"thread:{target}" if target is not None
                        else f"thread:{fq}:{node.lineno}")
            sites.append(ThreadStartSite(
                role=name, path=decl.module.path, line=node.lineno,
                function=fq, target=target))
    sites.sort(key=lambda s: (s.path, s.line))
    return sites


def thread_start_paths(project: ProjectContext) -> set[str]:
    """Paths containing at least one thread construction — editing one
    can re-role downstream files, so ``--changed`` treats them like
    hot-path annotation seeds (roles flow caller → callee)."""
    return {site.path for site in thread_start_sites(project)}


def _is_thread_ctor(decl: FunctionDecl, node: ast.Call) -> bool:
    from repro.staticcheck.astutil import dotted_segments

    segments = dotted_segments(node.func)
    if segments is None:
        return False
    return _external_dotted(decl.module, segments) == "threading.Thread"


def _thread_name(node: ast.Call) -> str | None:
    for keyword in node.keywords:
        if keyword.arg == "name" and isinstance(keyword.value, ast.Constant) \
                and isinstance(keyword.value.value, str):
            return keyword.value.value
    return None


def _resolve_target(project: ProjectContext, decl: FunctionDecl,
                    node: ast.Call) -> str | None:
    """Qualname of the ``target=`` callable: ``self.<m>`` resolves
    through the enclosing class, bare names through the module, and
    ``obj.<m>`` through typed locals/parameters."""
    target_expr: ast.expr | None = None
    for keyword in node.keywords:
        if keyword.arg == "target":
            target_expr = keyword.value
    if target_expr is None:
        return None
    class_decl = (project.classes.get(decl.class_qualname)
                  if decl.class_qualname else None)
    attr = self_attribute(target_expr)
    if attr is not None and class_decl is not None:
        return project.resolve_method(class_decl.qualname, attr)
    if isinstance(target_expr, ast.Name):
        from repro.staticcheck.callgraph import module_name_for

        modname = module_name_for(decl.module.path)
        candidate = f"{modname}.{target_expr.id}"
        if candidate in project.functions:
            return candidate
        return None
    if (isinstance(target_expr, ast.Attribute)
            and isinstance(target_expr.value, ast.Name)):
        local_types = _local_types(project, decl, class_decl)
        receiver = local_types.get(target_expr.value.id)
        if receiver is not None and receiver in project.classes:
            return project.resolve_method(receiver, target_expr.attr)
    return None


# -- role propagation ---------------------------------------------------------


def _override_map(project: ProjectContext) -> dict[str, tuple[str, ...]]:
    """Base-method qualname -> overriding-method qualnames, over the
    project's class hierarchy.  A call that resolves to ``Sensors.x``
    may execute ``MonitorSensors.x`` at runtime, so roles must flow
    into every override too (class-hierarchy virtual dispatch) — the
    access witness caught exactly this hole: daemon-role accesses on
    monitor state the base-resolved call graph classified main-only."""
    overrides: dict[str, set[str]] = {}
    for decl in project.classes.values():
        seen: set[str] = set()
        stack = list(decl.bases)
        while stack:
            base_qualname = stack.pop()
            if base_qualname in seen:
                continue
            seen.add(base_qualname)
            base = project.classes.get(base_qualname)
            if base is None:
                continue
            for name, fq in decl.methods.items():
                base_fq = base.methods.get(name)
                if base_fq is not None and base_fq != fq:
                    overrides.setdefault(base_fq, set()).add(fq)
            stack.extend(base.bases)
    return {base_fq: tuple(sorted(methods))
            for base_fq, methods in overrides.items()}


def _propagate(project: ProjectContext, result: OwnershipResult) -> None:
    """Breadth-first role propagation along internal call edges.

    Runs one BFS per role so every (function, role) pair keeps a
    shortest-chain provenance, mirroring hot-path propagation."""
    sites = thread_start_sites(project)
    targets: set[str] = set()
    role_roots: dict[str, list[tuple[str, TraceEntry]]] = {}
    for site in sites:
        result.roles.setdefault(site.role, site)
        if site.target is None or site.target not in project.functions:
            continue
        targets.add(site.target)
        root_decl = project.functions[site.target]
        role_roots.setdefault(site.role, []).append((site.target, TraceEntry(
            path=site.path, line=site.line, function=site.function,
            note=f"starts thread {site.role!r} targeting "
                 f"{site.target}()")))
        _ = root_decl  # declaration looked up to assert existence

    called_internally: set[str] = set()
    for fq in project.functions:
        for edge in project.calls_from(fq):
            if not edge.external and edge.callee in project.functions:
                called_internally.add(edge.callee)

    main_roots: list[tuple[str, TraceEntry]] = []
    for fq, decl in project.functions.items():
        if fq in targets or fq in called_internally:
            continue
        main_roots.append((fq, TraceEntry(
            path=decl.module.path, line=decl.node.lineno, function=fq,
            note="entry point: no internal caller, reachable from the "
                 "foreground")))
    role_roots[MAIN_ROLE] = main_roots

    overrides = _override_map(project)
    for role in sorted(role_roots):
        _bfs_role(project, result, role, role_roots[role], overrides)


def _bfs_role(project: ProjectContext, result: OwnershipResult,
              role: str, roots: list[tuple[str, TraceEntry]],
              overrides: dict[str, tuple[str, ...]]) -> None:
    queue: deque[tuple[str, int]] = deque()

    def mark(fq: str, chain: tuple[TraceEntry, ...], depth: int) -> bool:
        chains = result.provenance.setdefault(fq, {})
        if role in chains:
            return False
        chains[role] = chain
        result.function_roles[fq] = \
            result.function_roles.get(fq, frozenset()) | {role}
        queue.append((fq, depth))
        return True

    for fq, origin in roots:
        mark(fq, (origin,), 0)
    while queue:
        fq, depth = queue.popleft()
        if depth >= _MAX_DEPTH:
            continue
        caller_decl = project.functions[fq]
        for edge in project.calls_from(fq):
            if edge.external or edge.callee not in project.functions:
                continue
            step = TraceEntry(
                path=caller_decl.module.path, line=edge.line,
                function=fq, note=f"{role} calls {edge.callee}()")
            chain = (*result.provenance[fq][role], step)
            mark(edge.callee, chain, depth + 1)
            # Class-hierarchy virtual dispatch: the resolved callee may
            # be a base method whose override actually runs.
            for override in overrides.get(edge.callee, ()):
                virtual_step = TraceEntry(
                    path=caller_decl.module.path, line=edge.line,
                    function=fq,
                    note=f"{role} calls {edge.callee}(), which "
                         f"{override}() overrides")
                mark(override, (*result.provenance[fq][role],
                                virtual_step), depth + 1)


# -- field classification -----------------------------------------------------


def _delegates_mutation(project: ProjectContext, decl: ClassDecl,
                        attr: str) -> bool:
    """Whether mutator-method calls on ``self.<attr>`` are the
    *delegate's* concern: true when the attribute's inferred type is a
    project class that carries its own synchronization (a lock-typed
    attribute or a Condition wrap), so its methods — which the
    ownership phase classifies separately — enforce the discipline.
    Direct rebinds and mutation of unsynchronized containers stay
    write sites here."""
    attr_type = decl.attr_types.get(attr)
    if attr_type is None:
        return False
    delegate = project.classes.get(attr_type)
    if delegate is None:
        return False
    if delegate.condition_wraps:
        return True
    return any(inner in SYNC_TYPES
               for inner in delegate.attr_types.values())


def _collect_sites(deep: "DeepContext", config: StaticcheckConfig,
                   result: OwnershipResult,
                   decl: ClassDecl) -> dict[str, list[AccessSite]]:
    """Every ``self.<attr>`` read and write inside the class's own
    methods, with roles and held locks attached."""
    from repro.staticcheck.dataflow import attr_flows_for

    analyzer = attr_flows_for(deep, config)
    sites: dict[str, list[AccessSite]] = {}
    for method_name, method_fq in decl.methods.items():
        method = deep.project.functions.get(method_fq)
        if method is None:
            continue
        in_init = method_name == "__init__"
        roles = result.roles_of(method_fq)
        seen_writes: set[int] = set()
        for node in ast.walk(method.node):
            mutation = mutated_attr(node)
            if mutation is not None:
                attr, location = mutation
                if (isinstance(location, ast.Call)
                        and _delegates_mutation(deep.project, decl,
                                                attr)):
                    # ``self.statistics.append(...)``: the mutation
                    # happens inside the attribute's own class, whose
                    # lock discipline is classified separately — the
                    # binding itself is only read here, matching the
                    # access witness (``__setattr__`` fires on
                    # rebinds, not on delegate-internal mutation).
                    continue
                seen_writes.add(id(location))
                sites.setdefault(attr, []).append(AccessSite(
                    attr=attr, function=method_fq,
                    path=method.module.path,
                    line=getattr(location, "lineno", method.node.lineno),
                    column=getattr(location, "col_offset", 0),
                    kind="write", roles=roles,
                    held=analyzer.held_at(method_fq, location),
                    in_init=in_init))
        for node in ast.walk(method.node):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)):
                continue
            attr = self_attribute(node) or ""
            if not attr or attr in decl.methods:
                continue  # `self.helper(...)` is a call, not state
            sites.setdefault(attr, []).append(AccessSite(
                attr=attr, function=method_fq, path=method.module.path,
                line=node.lineno, column=node.col_offset,
                kind="read", roles=roles,
                held=analyzer.held_at(method_fq, node),
                in_init=in_init))
    return sites


def _attr_annotations(decl: ClassDecl,
                      ) -> dict[str, tuple[str | None,
                                           tuple[str, ...], int | None]]:
    """Per attribute: (owned role, shared lock args, annotation line)
    from directives attached to its assignments inside the class."""
    module = decl.module
    annotations: dict[str, tuple[str | None, tuple[str, ...],
                                 int | None]] = {}
    for node in ast.walk(decl.node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            attr = self_attribute(target)
            if attr is None:
                continue
            end = getattr(node, "end_lineno", None) or node.lineno
            for line in range(node.lineno, end + 1):
                owned = module.directives(line, "owned")
                shared = module.directives(line, "shared")
                if not owned and not shared:
                    continue
                prev_owner, prev_shared, prev_line = annotations.get(
                    attr, (None, (), None))
                owner = prev_owner
                if owned and owned[0].args:
                    owner = owned[0].args[0]
                shared_args = prev_shared
                if shared:
                    shared_args = tuple(shared[0].args)
                annotations[attr] = (
                    owner, shared_args,
                    prev_line if prev_line is not None else line)
    return annotations


def _classify(decl: ClassDecl, attr: str,
              sites: list[AccessSite]) -> FieldOwnership:
    attr_type = decl.attr_types.get(attr)
    info = FieldOwnership(attr=attr, classification="")
    info.init_writes = sum(1 for s in sites
                           if s.in_init and s.kind == "write")
    info.sites = [s for s in sites if not s.in_init]
    if attr_type in SYNC_TYPES:
        info.classification = "synchronized"
        info.roles = _site_roles(info.sites)
        return info
    post_writes = [s for s in info.sites if s.kind == "write"]
    info.roles = _site_roles(info.sites)
    if not post_writes:
        info.classification = "handoff"
        return info
    if len(info.roles) == 1:
        info.classification = "exclusive"
        return info
    common = _common_guard(decl, info.sites)
    if common is not None:
        info.classification = "guarded"
        info.guard = common
        return info
    info.classification = "shared-unsynchronized"
    return info


def _site_roles(sites: list[AccessSite]) -> tuple[str, ...]:
    roles: set[str] = set()
    for site in sites:
        roles.update(site.roles)
    return tuple(sorted(roles))


def _common_guard(decl: ClassDecl,
                  sites: list[AccessSite]) -> str | None:
    """The lock token held at *every* post-construction access —
    reads included: an unlocked read of multi-role state is exactly
    the torn observation the guard exists to prevent."""
    common: set[str] | None = None
    for site in sites:
        held = set(site.held)
        common = held if common is None else (common & held)
        if not common:
            return None
    if not common:
        return None
    own = sorted(token for token in common
                 if token.startswith(f"{decl.qualname}."))
    return (own or sorted(common))[0]


def compute_ownership(deep: "DeepContext",
                      config: StaticcheckConfig) -> OwnershipResult:
    """Run the full phase: roles, propagation, field classification."""
    result = OwnershipResult()
    _propagate(deep.project, result)
    for qualname in sorted(deep.project.classes):
        decl = deep.project.classes[qualname]
        sites = _collect_sites(deep, config, result, decl)
        if not sites:
            continue
        ownership = ClassOwnership(decl=decl)
        annotations = _attr_annotations(decl)
        lock_names = {attr for attr, attr_type in decl.attr_types.items()
                      if attr_type in LOCK_TYPES}
        for attr in sorted(sites):
            relevant = sites[attr]
            if not any(not s.in_init for s in relevant):
                continue  # construction-only: not monitored state
            if attr in lock_names:
                info = FieldOwnership(attr=attr,
                                      classification="synchronized")
                info.sites = [s for s in relevant if not s.in_init]
                info.roles = _site_roles(info.sites)
            else:
                info = _classify(decl, attr, relevant)
            owner, shared_args, line = annotations.get(attr,
                                                       (None, (), None))
            info.declared_owner = owner
            info.declared_shared = shared_args
            info.annotation_line = line
            ownership.fields[attr] = info
        if ownership.fields:
            result.classes[qualname] = ownership
    return result


def ownership_for(deep: "DeepContext",
                  config: StaticcheckConfig) -> OwnershipResult:
    """Memoized phase on the shared :class:`DeepContext` — the three
    OWN rules (and the map export) all consume one computation."""
    if deep.ownership is None:
        deep.ownership = compute_ownership(deep, config)
    return deep.ownership


# -- standalone map computation (CLI / runtime witness) -----------------------


def compute_ownership_map(paths: Iterable[str] | None = None,
                          config: StaticcheckConfig | None = None,
                          ) -> OwnershipResult:
    """Build the project and run the phase over ``paths`` (default:
    the installed ``repro`` package sources — the same convention as
    :func:`repro.core.lockwitness.static_order_edges`, so the runtime
    access witness can fetch the map without a checkout)."""
    import pathlib

    from repro.staticcheck.callgraph import build_project
    from repro.staticcheck.driver import ModuleContext, iter_python_files
    from repro.staticcheck.lockflow import DeepContext, LockFlow

    if config is None:
        config = StaticcheckConfig()
    if paths is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        paths = [str(package_root)]
    modules = []
    for path in iter_python_files(list(paths)):
        try:
            modules.append(ModuleContext.from_source(
                str(path), path.read_text(encoding="utf-8")))
        except (OSError, SyntaxError):
            continue
    project = build_project(modules)
    lockflow = LockFlow(project, config).analyze()
    deep = DeepContext(project=project, lockflow=lockflow)
    return ownership_for(deep, config)
