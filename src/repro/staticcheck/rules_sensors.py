"""SNS — sensor-overhead discipline.

The paper's sensors log "at the source": every value they record is
already in hand when the sensor fires, so a sensor call costs 1–2 µs
and *never* performs catalog lookups or issues queries.  ``SNS001``
flags any call inside a sensor module whose attribute chain reaches
for the catalog, the engine, or a session (``self.engine.connect``,
``database.catalog.tables``, ``session.execute`` ...).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticcheck.astutil import dotted_segments
from repro.staticcheck.base import Rule, register
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity


@register
class SensorCatalogCallRule(Rule):
    """SNS001 — catalog/engine round trip inside a sensor path."""

    rule_id = "SNS001"
    summary = ("sensors must log values already in hand — no catalog, "
               "engine or session calls from record paths")
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        if not config.path_matches(module.path,
                                   config.sensor_module_paths):
            return
        banned = set(config.sensor_banned_segments)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            segments = dotted_segments(node.func)
            if not segments:
                continue
            hits = [s for s in segments if s in banned]
            if hits:
                chain = ".".join(segments)
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"sensor path calls {chain}() which goes through "
                    f"{'/'.join(sorted(set(hits)))}; sensors must only "
                    f"record values the engine already computed",
                )
