"""Incremental analysis cache (``--cache``).

Analysis results persist under ``.staticcheck-cache/cache.json`` so a
warm ``repro lint --deep`` re-analyzes nothing that did not change:

* **Shallow entries** are per file, keyed by the sha256 of the file's
  content.  A hit replays the stored findings without parsing.
* **Deep entries** are whole-set: the interprocedural phase sees the
  program, not a file, so its findings are reusable only when *every*
  analyzed file hashes the same as when they were computed.  The entry
  also stores the call-graph's direct file-level dependency edges
  (:func:`~repro.staticcheck.dataflow.file_dependencies`), which
  :meth:`AnalysisCache.explain` uses to say *why* a file is stale —
  its own content changed, or a file it depends on (transitively) did
  — and which ``--changed`` walks in reverse to find dependents.

The whole cache is invalidated when the rule set changes (new rules,
:data:`RULESET_VERSION` bump) or the effective configuration changes —
both are folded into fingerprints checked at load time.  Every
filesystem failure is soft: a cache that cannot be read or written
degrades to a cold run, never to an error.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.staticcheck.annotations import KNOWN_DIRECTIVES
from repro.staticcheck.base import rule_ids
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.findings import Finding

RULESET_VERSION = 6
"""Bumped whenever rule semantics change in a way that invalidates
previously cached findings (new rule family, changed detection logic).
Version 6: DOM001–DOM004 integer-domain rules and the
``domain(...)``/``mixeddomain(<witness>)`` annotation grammar.
Version 5: OWN001–OWN003 thread-ownership rules and the
``owned(<role>)`` annotation grammar.
Version 4: PRF001–PRF005 hot-path performance rules and the
``hotpath``/``coldpath``/``allocfree`` annotation grammar.
Version 3: ATM001/ATM002/PUB001 dataflow rules."""

_CACHE_FILE = "cache.json"


def content_hash(source: str) -> str:
    """sha256 of a file's content — the per-file cache key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def ruleset_fingerprint() -> str:
    """Hash of the rule-set version, every registered rule id and the
    annotation grammar.  The directive list is part of the fingerprint
    because adding a directive changes analysis behaviour for files
    whose *content* did not change meaning under the old grammar — a
    comment that used to be rejected (or ignored) may now seed hot-path
    propagation, so every cached finding computed under the old grammar
    is suspect."""
    payload = (f"{RULESET_VERSION}:{','.join(rule_ids())}"
               f":{','.join(KNOWN_DIRECTIVES)}")
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config: StaticcheckConfig) -> str:
    """Hash of the effective configuration; any tunable change (budget
    ceilings included) invalidates cached findings."""
    parts = [
        f"{f.name}={getattr(config, f.name)!r}"
        for f in fields(config)
    ]
    return hashlib.sha256(";".join(parts).encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """What the cache did during one run (reported in JSON schema v3)."""

    shallow_hits: int = 0
    shallow_analyzed: int = 0
    deep_from_cache: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "shallow_hits": self.shallow_hits,
            "shallow_analyzed": self.shallow_analyzed,
            "deep_from_cache": self.deep_from_cache,
        }


@dataclass
class AnalysisCache:
    """Content-addressed store of shallow and deep findings."""

    directory: Path
    ruleset: str = field(default_factory=ruleset_fingerprint)
    config_key: str = ""
    shallow: dict[str, dict[str, Any]] = field(default_factory=dict)
    """path -> {"hash": ..., "findings": [finding dicts]}."""
    deep: dict[str, Any] = field(default_factory=dict)
    """{"hashes": {path: hash}, "findings": [...],
    "deps": {path: [paths]}} — or empty when nothing deep is cached."""
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def open(cls, directory: Path | str,
             config: StaticcheckConfig) -> "AnalysisCache":
        """Load the cache under ``directory``, discarding it wholesale
        on fingerprint mismatch, corruption, or read failure."""
        cache = cls(directory=Path(directory),
                    config_key=config_fingerprint(config))
        try:
            raw = (cache.directory / _CACHE_FILE).read_text(
                encoding="utf-8")
            data = json.loads(raw)
        except (OSError, ValueError):
            return cache
        if not isinstance(data, dict):
            return cache
        if (data.get("ruleset") != cache.ruleset
                or data.get("config") != cache.config_key):
            return cache
        shallow = data.get("shallow")
        if isinstance(shallow, dict):
            cache.shallow = {
                path: entry for path, entry in shallow.items()
                if isinstance(entry, dict) and "hash" in entry
            }
        deep = data.get("deep")
        if isinstance(deep, dict) and "hashes" in deep:
            cache.deep = deep
        return cache

    # -- shallow (per-file) --------------------------------------------------

    def shallow_lookup(self, path: str,
                       source_hash: str) -> list[Finding] | None:
        """Stored findings for ``path`` at exactly this content hash."""
        entry = self.shallow.get(path)
        if entry is None or entry.get("hash") != source_hash:
            return None
        try:
            findings = [Finding.from_dict(item)
                        for item in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None
        self.stats.shallow_hits += 1
        return findings

    def shallow_store(self, path: str, source_hash: str,
                      findings: Sequence[Finding]) -> None:
        self.stats.shallow_analyzed += 1
        self.shallow[path] = {
            "hash": source_hash,
            "findings": [finding.to_dict() for finding in findings],
        }

    # -- deep (whole program) ------------------------------------------------

    def deep_lookup(self, hashes: Mapping[str, str],
                    ) -> list[Finding] | None:
        """Stored deep findings, valid only when the analyzed file set
        and every content hash match exactly."""
        stored = self.deep.get("hashes")
        if stored != dict(hashes):
            return None
        try:
            findings = [Finding.from_dict(item)
                        for item in self.deep.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None
        self.stats.deep_from_cache = True
        return findings

    def deep_store(self, hashes: Mapping[str, str],
                   findings: Sequence[Finding],
                   deps: Mapping[str, Sequence[str]]) -> None:
        self.deep = {
            "hashes": dict(hashes),
            "findings": [finding.to_dict() for finding in findings],
            "deps": {path: list(targets)
                     for path, targets in deps.items()},
        }

    # -- staleness explanation and reverse dependents ------------------------

    def explain(self, current_hashes: Mapping[str, str],
                ) -> dict[str, str]:
        """Why each file needs (deep) re-analysis against the cached
        state: ``"content-changed"`` (its own hash differs, or it is
        new), ``"dependent-changed"`` (a file it transitively depends
        on changed).  Fresh files are absent from the result."""
        stored: Mapping[str, str] = self.deep.get("hashes", {})
        changed = {
            path for path, digest in current_hashes.items()
            if stored.get(path) != digest
        }
        reasons = {path: "content-changed" for path in changed}
        deps: Mapping[str, Sequence[str]] = self.deep.get("deps", {})
        for path in current_hashes:
            if path in reasons:
                continue
            if self._reaches(path, changed, deps):
                reasons[path] = "dependent-changed"
        return reasons

    def dependents(self, paths: Sequence[str]) -> set[str]:
        """Reverse transitive closure over the stored dependency
        edges: every file whose analysis can observe ``paths``."""
        deps: Mapping[str, Sequence[str]] = self.deep.get("deps", {})
        return reverse_dependents(deps, paths)

    def _reaches(self, path: str, targets: set[str],
                 deps: Mapping[str, Sequence[str]]) -> bool:
        seen: set[str] = set()
        frontier = [path]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for dep in deps.get(current, ()):
                if dep in targets:
                    return True
                frontier.append(dep)
        return False

    # -- persistence ---------------------------------------------------------

    def save(self) -> bool:
        """Write atomically (tmp + replace); False on any OS failure."""
        payload = {
            "ruleset": self.ruleset,
            "config": self.config_key,
            "shallow": self.shallow,
            "deep": self.deep,
        }
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = self.directory / f"{_CACHE_FILE}.tmp"
            tmp.write_text(
                json.dumps(payload, indent=1, sort_keys=True),
                encoding="utf-8")
            tmp.replace(self.directory / _CACHE_FILE)
        except OSError:
            return False
        return True


def forward_dependencies(deps: Mapping[str, Sequence[str]],
                         seeds: Sequence[str]) -> set[str]:
    """All files any seed transitively depends on (seeds included).

    The hot-path analysis propagates *forward* along call edges: adding
    or removing a ``hotpath``/``coldpath`` annotation in a file changes
    which of its (transitive) callees are hot, so ``--changed`` must
    re-analyze those callees even though their own content is
    untouched — the mirror image of :func:`reverse_dependents`."""
    result: set[str] = set()
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(deps.get(current, ()))
    return result


def reverse_dependents(deps: Mapping[str, Sequence[str]],
                       seeds: Sequence[str]) -> set[str]:
    """All files that transitively depend on any seed (seeds
    included): the re-analysis set for ``--changed``."""
    reverse: dict[str, set[str]] = {}
    for source, targets in deps.items():
        for target in targets:
            reverse.setdefault(target, set()).add(source)
    result: set[str] = set()
    frontier = list(seeds)
    while frontier:
        current = frontier.pop()
        if current in result:
            continue
        result.add(current)
        frontier.extend(reverse.get(current, ()))
    return result


def git_changed_files(root: Path | str = ".") -> set[str] | None:
    """Paths changed relative to the branch point (``--changed``):
    ``git diff --name-only <merge-base>`` plus untracked files.  The
    base is ``origin/main``, falling back to local ``main`` and then
    plain ``HEAD``; None when git itself is unavailable or errors."""
    root = Path(root)

    def run(*args: str) -> str | None:
        try:
            completed = subprocess.run(
                ["git", *args], cwd=root, check=False,
                capture_output=True, text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return None
        if completed.returncode != 0:
            return None
        return completed.stdout

    base: str | None = None
    for ref in ("origin/main", "main", "HEAD"):
        out = run("merge-base", "HEAD", ref)
        if out is not None and out.strip():
            base = out.strip()
            break
    if base is None:
        return None
    diff = run("diff", "--name-only", base)
    if diff is None:
        return None
    changed = {line.strip() for line in diff.splitlines() if line.strip()}
    untracked = run("ls-files", "--others", "--exclude-standard")
    if untracked is not None:
        changed.update(
            line.strip() for line in untracked.splitlines()
            if line.strip())
    return changed
