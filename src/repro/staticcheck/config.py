"""Analyzer configuration, with optional ``[tool.staticcheck]`` loading.

Path options are :mod:`fnmatch` patterns matched against the analyzed
file's POSIX path (``*`` crosses directory separators), so defaults
like ``*repro/clock.py`` work whether the analyzer is given
``src/repro`` or an absolute path.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from fnmatch import fnmatch
from pathlib import Path

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class StaticcheckConfig:
    """Tunables of the project lint; defaults mirror ``pyproject.toml``."""

    clock_allowed_paths: tuple[str, ...] = ("*repro/clock.py",)
    """Modules allowed to call wall-clock primitives directly (the
    single time source the CLK rules protect)."""

    critical_except_paths: tuple[str, ...] = (
        "*repro/core/daemon.py",
        "*repro/core/watchdog.py",
        "*repro/core/sensors.py",
        "*repro/core/monitor.py",
    )
    """Modules where a swallowed broad ``except`` hides monitor data
    loss (EXC002); bare ``except`` (EXC001) is banned everywhere."""

    sensor_module_paths: tuple[str, ...] = (
        "*repro/core/sensors.py",
        "*repro/core/monitor.py",
    )
    """Modules holding sensor record paths (SNS001 scope)."""

    sensor_banned_segments: tuple[str, ...] = (
        "catalog",
        "engine",
        "session",
        "execute",
        "connect",
        "storage_for",
        "system_statistics",
    )
    """Call-chain segments that signal a catalog/engine round trip —
    the paper's "no extra catalog lookups" rule for sensors."""

    blocking_call_patterns: tuple[str, ...] = (
        "time.sleep",
        "socket.*",
        "subprocess.*",
        "select.select",
        "open",
        "io.open",
        "*.Clock.sleep",
        "*.SystemClock.sleep",
        "*.VirtualClock.sleep",
        "*.Session.execute",
        "*.EngineInstance.connect",
        "*.DiskManager.read",
        "*.DiskManager.write",
        "*.Thread.join",
        "threading.Thread.join",
    )
    """Resolved call targets considered blocking for LCK004 (fnmatch
    patterns over fully qualified names).  ``queue.Queue.get`` and
    ``threading.Event.wait`` without a timeout are blocking too but are
    recognised structurally, not via this list; ``Condition.wait`` is
    exempt because it releases the lock it waits on."""

    growth_scope_paths: tuple[str, ...] = (
        "*repro/core/ring_buffer.py",
        "*repro/core/monitor.py",
        "*repro/core/sensors.py",
        "*repro/core/daemon.py",
        "*repro/core/watchdog.py",
        "*repro/engine/locks.py",
        "*repro/storage/buffer_pool.py",
    )
    """Modules whose classes must keep every container bounded (GRW001
    scope) — the monitor/sensor path, where the paper promises a fixed
    memory footprint no matter how long the DBMS runs."""

    sensor_cardinality_segments: tuple[str, ...] = (
        "catalog",
        "engine",
        "session",
        "rows",
        "tables",
        "storage_for",
    )
    """Iterable-chain segments whose size scales with catalog or table
    cardinality; loops over them inside sensor record paths break the
    constant per-call sensor budget (SNS002)."""

    hotpath_scope_paths: tuple[str, ...] = (
        "*repro/core/sensors.py",
        "*repro/core/monitor.py",
        "*repro/core/ring_buffer.py",
        "*repro/core/daemon.py",
        "*repro/engine/locks.py",
    )
    """Modules where the PRF rules report findings — the sensor /
    ring-buffer / daemon-flush / lock-manager hot path whose per-call
    constant sets the figure-4 monitoring overhead.  Hot-path
    *propagation* is unrestricted (a hot root may call anywhere); only
    reporting is scoped, so adopting the rules module-by-module does
    not require the whole tree to be clean at once."""

    hotpath_wallclock_patterns: tuple[str, ...] = (
        "time.time",
        "clock.now",
        "*.clock.now",
        "*.Clock.now",
        "*.SystemClock.now",
        "*.VirtualClock.now",
    )
    """Resolved call targets that read the wall clock (PRF004, fnmatch
    over fully qualified names).  Duration probes
    (``time.perf_counter``) are deliberately absent: sensors time
    themselves with the monotonic counter, and PRF004 only polices
    per-row *timestamp* reads, which batch or defer."""

    hotpath_guard_names: tuple[str, ...] = (
        "debug",
        "verbose",
        "enabled",
        "level",
        "isEnabledFor",
        "trace_enabled",
    )
    """Identifier fragments that mark an ``if`` test as a log-level /
    debug guard: formatting work under such a guard is exempt from
    PRF003 (the guard keeps it off the production hot path)."""

    ownership_scope_paths: tuple[str, ...] = (
        "*repro/core/daemon.py",
        "*repro/core/monitor.py",
        "*repro/core/autopilot.py",
        "*repro/core/watchdog.py",
        "*repro/core/ring_buffer.py",
        "*repro/core/lockwitness.py",
        "*repro/core/accesswitness.py",
        "*repro/engine/locks.py",
    )
    """Modules where the thread-ownership rules (OWN001–OWN003) report
    findings — the classes whose fields cross the daemon/tuner/main
    thread boundary.  As with the hot-path scope, *inference* is
    whole-program (thread roles propagate anywhere); only reporting is
    scoped, so adopting the rules module-by-module does not require
    the whole tree to be ownership-clean at once."""

    domain_scope_paths: tuple[str, ...] = (
        "*repro/core/sharding.py",
        "*repro/core/daemon.py",
        "*repro/core/workload_db.py",
        "*repro/core/ring_buffer.py",
        "*repro/core/ima.py",
        "*repro/workloads/driver.py",
        "*repro/bench.py",
    )
    """Modules where the integer-domain rules (DOM001–DOM004) report
    findings — the sharded-monitoring path whose plain ``int``s carry
    incompatible meanings (local vs encoded vs persisted seqs, shard
    vs session ids).  As with the other deep scopes, *inference* is
    whole-program; only reporting is scoped."""

    domain_seed_returns: tuple[str, ...] = (
        "repro.core.sharding.encode_seq=encoded_seq",
        "repro.core.sharding.decode_seq=local_seq/shard_id",
        "repro.core.sharding.shard_of_seq=shard_id",
        "repro.core.sharding.ShardedMonitor.shard_id_for=shard_index",
        "repro.core.ring_buffer.RingBuffer.append=local_seq",
        "repro.core.workload_db.WorkloadDatabase.load_high_water_vector"
        "=src_seq",
    )
    """Known producers, as ``"qualname=dom"`` (``dom1/dom2`` for
    tuple-valued returns): calls resolving to these qualnames yield
    the given domain.  Functions listed here are exempt from site
    collection — their bodies *implement* the encoding."""

    domain_name_seeds: tuple[str, ...] = (
        "session_id=session_id",
        "shard_id=shard_id",
        "shard_index=shard_index",
        "local_seq=local_seq",
        "src_seq=src_seq",
        "merged_seq=encoded_seq",
        "encoded_seq=encoded_seq",
        "high_water=encoded_seq",
    )
    """Parameter/attribute names that carry their domain, as
    ``"name=dom"``.  Deliberately minimal and never applied to bare
    locals; an unqualified ``seq`` seeds nothing."""

    domain_merge_helpers: tuple[str, ...] = (
        "*.MergedRingView.*",
        "*.MergedKeyedView.*",
        "*.load_high_water_vector",
    )
    """Function qualname patterns exempt from the DOM001 encoded-seq
    ordering check: the k-way merge views and the per-shard recovery
    vector implement the cross-shard ordering themselves."""

    rule_budget_default_s: float = 5.0
    """Per-rule wall-time ceiling in seconds enforced by ``--budget``;
    rules whose accumulated analysis time exceeds it fail the lint
    with a BGT001 finding."""

    rule_budget_overrides: tuple[str, ...] = ()
    """Per-rule ceilings as ``"RULE=seconds"`` strings, e.g.
    ``("LCK003=10", "GRW001=2.5")``.  A ceiling of ``0`` makes any
    measurable time an overrun (useful for tests)."""

    def path_matches(self, path: str, patterns: tuple[str, ...]) -> bool:
        posix = Path(path).as_posix()
        return any(fnmatch(posix, pattern) for pattern in patterns)

    def rule_budget_s(self, rule_id: str) -> float:
        """Effective wall-time ceiling for ``rule_id``."""
        for override in self.rule_budget_overrides:
            name, _, value = override.partition("=")
            if name.strip() == rule_id:
                try:
                    return float(value)
                except ValueError:
                    break
        return self.rule_budget_default_s


def load_config(start: Path | str | None = None) -> StaticcheckConfig:
    """Build the config, honouring ``[tool.staticcheck]`` if a
    ``pyproject.toml`` is found at or above ``start`` (default: cwd).

    Missing pyproject, missing section, or a Python without
    :mod:`tomllib` all fall back to the built-in defaults.
    """
    defaults = StaticcheckConfig()
    if tomllib is None:
        return defaults
    directory = Path(start) if start is not None else Path.cwd()
    if directory.is_file():
        directory = directory.parent
    pyproject: Path | None = None
    for candidate in (directory, *directory.parents):
        probe = candidate / "pyproject.toml"
        if probe.is_file():
            pyproject = probe
            break
    if pyproject is None:
        return defaults
    try:
        with pyproject.open("rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError):
        return defaults
    section = data.get("tool", {}).get("staticcheck", {})
    if not isinstance(section, dict) or not section:
        return defaults
    known = {f.name for f in fields(StaticcheckConfig)}
    overrides: dict[str, object] = {}
    for key, value in section.items():
        if key not in known:
            continue
        if isinstance(value, list):
            overrides[key] = tuple(str(item) for item in value)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            overrides[key] = float(value)
    return StaticcheckConfig(**overrides)  # type: ignore[arg-type]
