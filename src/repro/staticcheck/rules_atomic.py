"""ATM/PUB — atomicity and safe-publication rule families (``--deep``).

``ATM001`` — check-then-act.  A field whose writes the dataflow layer
infers to be guarded by a lock is *tested* (an ``if``/``while``
condition) either without that lock or through a stale local snapshot
taken under an earlier acquisition, and the branch then *acts* on the
field (writes it, directly or through a same-class helper).  Between
the test and the act another thread can change the field, so the act
runs on a decision that is no longer true.

``ATM002`` — compound read-modify-write.  ``self.n += 1`` or
``self.d[k] = self.d.get(k, 0) + 1`` on an attribute guarded elsewhere
by a lock, executed without that lock: two threads interleaving the
read and the write lose one update.  The guard is *inferred* from
where the attribute's locked writes happen — no annotation needed
(annotated attributes stay LCK001's job).

``PUB001`` — unsafe publication.  ``self`` escapes ``__init__`` — a
thread targeting a bound method is started, ``self`` is handed to a
callback registry or foreign call, or stored in a module global —
while attributes assigned later in ``__init__`` do not exist yet.  The
receiving thread can observe a half-constructed object.

A deliberate, evidenced exception is declared with
``# staticcheck: atomic(<witness>)`` on (or directly above) the
reported line, where ``<witness>`` names what makes the sequence
atomic — typically an outer mutex serializing all callers
(``atomic(_poll_mutex)``) or a re-check under the lock
(``atomic(rechecked-under-lock)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from repro.staticcheck.astutil import (
    ancestors,
    attr_reads,
    dotted_segments,
    mutated_attr,
)
from repro.staticcheck.base import ProjectRule, register_deep
from repro.staticcheck.callgraph import (
    ClassDecl,
    FunctionDecl,
    _external_dotted,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.dataflow import AttrFlow, ClassAttrFlow, attr_flows_for
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.lockflow import DeepContext


def _waived(module: ModuleContext, line: int) -> bool:
    """An ``atomic(<witness>)`` directive on the line or the line above
    waives the ATM/PUB finding; the witness argument is mandatory —
    an unexplained waiver is no waiver."""
    for candidate in (line, line - 1):
        for directive in module.directives(candidate, "atomic"):
            if directive.args:
                return True
    return False


@dataclass
class _Act:
    """Where a branch writes the tested attribute."""

    line: int
    function: str
    note: str


def _short(token: str) -> str:
    """``repro.core.daemon.StorageDaemon._lock`` -> ``self._lock``."""
    return f"self.{token.rsplit('.', 1)[-1]}"


class _AtomicRuleBase(ProjectRule):
    """Shared iteration over classes with inferred guards."""

    def _class_flows(self, deep: DeepContext, config: StaticcheckConfig,
                     ) -> Iterable[tuple[str, ClassAttrFlow, AttrFlow]]:
        analyzer = attr_flows_for(deep, config)
        for qualname in sorted(analyzer.flows.classes):
            flow = analyzer.flows.classes[qualname]
            if flow.guards:
                yield qualname, flow, analyzer


@register_deep
class CheckThenActRule(_AtomicRuleBase):
    """ATM001 — guarded field tested and acted on non-atomically."""

    rule_id = "ATM001"
    summary = ("a lock-guarded field must not be tested without the "
               "lock (or via a stale snapshot) and then acted on — "
               "the decision can be invalidated between test and act")
    waiver = ("atomic(<witness>) on the test, naming why the pair cannot"
              " be invalidated between test and act")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for qualname, flow, analyzer in self._class_flows(deep, config):
            for method_fq in sorted(flow.decl.methods.values()):
                method = deep.project.functions.get(method_fq)
                if method is None or method.name == "__init__":
                    continue
                yield from self._check_method(deep, flow, analyzer,
                                              qualname, method)

    def _check_method(self, deep: DeepContext, flow: ClassAttrFlow,
                      analyzer: AttrFlow, class_qualname: str,
                      method: FunctionDecl) -> Iterable[Finding]:
        module = method.module
        snapshots: dict[str, tuple[str, str, ast.AST, int]] = {}
        # local name -> (attr, guard token, region source node, line)
        events: list[tuple[int, ast.AST]] = sorted(
            ((node.lineno, node) for node in ast.walk(method.node)
             if isinstance(node, (ast.Assign, ast.If, ast.While))),
            key=lambda pair: pair[0])
        for line, node in events:
            if isinstance(node, ast.Assign):
                self._track_snapshot(flow, analyzer, method, node,
                                     snapshots)
                continue
            yield from self._check_test(deep, flow, analyzer,
                                        class_qualname, method,
                                        module, node, snapshots)

    def _track_snapshot(self, flow: ClassAttrFlow, analyzer: AttrFlow,
                        method: FunctionDecl, node: ast.Assign,
                        snapshots: dict[str, tuple[str, str, ast.AST, int]],
                        ) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0],
                                                    ast.Name):
            return
        name = node.targets[0].id
        snapshots.pop(name, None)  # reassignment invalidates
        read = sorted(attr_reads(node.value) & set(flow.guards))
        if not read:
            return
        attr = read[0]
        token = flow.guards[attr]
        if token not in analyzer.lexically_held(method.qualname, node):
            return  # not taken under the guard: P1 handles raw tests
        snapshots[name] = (attr, token, node, node.lineno)

    def _check_test(self, deep: DeepContext, flow: ClassAttrFlow,
                    analyzer: AttrFlow, class_qualname: str,
                    method: FunctionDecl, module: ModuleContext,
                    node: ast.If | ast.While,
                    snapshots: dict[str, tuple[str, str, ast.AST, int]],
                    ) -> Iterable[Finding]:
        held = analyzer.held_at(method.qualname, node)
        # P1: the test reads the guarded field with the guard not held.
        for attr in sorted(attr_reads(node.test) & set(flow.guards)):
            token = flow.guards[attr]
            if token in held or _waived(module, node.lineno):
                continue
            act = self._act_on(deep, analyzer, class_qualname,
                               method, node, attr)
            if act is None:
                continue
            yield self.finding(
                module.path, node.lineno, node.col_offset,
                f"check-then-act: self.{attr} is tested without "
                f"{_short(token)} (which guards its writes) and the "
                f"branch then {act.note}; another thread can change "
                f"self.{attr} between the test and the act — test and "
                f"act under one `with {_short(token)}:` block, or waive "
                f"with `# staticcheck: atomic(<witness>)`",
                trace=[
                    TraceEntry(module.path, node.lineno, method.qualname,
                               f"tests self.{attr} without "
                               f"{_short(token)}"),
                    TraceEntry(module.path, act.line, act.function,
                               act.note),
                ],
            )
        # P2: the test consumes a snapshot taken under a previous
        # acquisition — the lock was released in between.
        for name in sorted(_name_reads(node.test) & set(snapshots)):
            attr, token, origin, taken_line = snapshots[name]
            if token in held or _waived(module, node.lineno):
                continue
            if _within(node, origin, module):
                continue  # still inside the region that took it
            act = self._act_on(deep, analyzer, class_qualname,
                               method, node, attr)
            if act is None:
                continue
            yield self.finding(
                module.path, node.lineno, node.col_offset,
                f"check-then-act across a lock release: `{name}` "
                f"snapshots self.{attr} under {_short(token)} (line "
                f"{taken_line}), the lock is released, and the branch "
                f"then {act.note}; re-check self.{attr} under "
                f"{_short(token)} before acting, or waive with "
                f"`# staticcheck: atomic(<witness>)`",
                trace=[
                    TraceEntry(module.path, taken_line, method.qualname,
                               f"snapshots self.{attr} into `{name}` "
                               f"under {_short(token)}"),
                    TraceEntry(module.path, node.lineno, method.qualname,
                               f"tests `{name}` after releasing "
                               f"{_short(token)}"),
                    TraceEntry(module.path, act.line, act.function,
                               act.note),
                ],
            )

    def _act_on(self, deep: DeepContext, analyzer: AttrFlow,
                class_qualname: str, method: FunctionDecl,
                stmt: ast.If | ast.While, attr: str) -> _Act | None:
        """A write to ``attr`` inside the branch — direct, or through a
        same-class ``self.<m>()`` call chain."""
        for child in (*stmt.body, *stmt.orelse):
            for node in ast.walk(child):
                mutation = mutated_attr(node)
                if mutation is not None and mutation[0] == attr:
                    return _Act(
                        line=getattr(node, "lineno", stmt.lineno),
                        function=method.qualname,
                        note=f"writes self.{attr}")
        prefix = f"{class_qualname}."
        for edge in deep.project.calls_from(method.qualname):
            if edge.external or not edge.callee.startswith(prefix):
                continue
            if not _node_within_branch(edge.node, stmt, method):
                continue
            if attr in analyzer.writes_transitively(edge.callee,
                                                    class_qualname):
                return _Act(
                    line=edge.line, function=method.qualname,
                    note=f"calls {edge.callee}() which writes "
                         f"self.{attr}")
        return None


def _name_reads(expr: ast.AST) -> set[str]:
    return {
        node.id for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _within(node: ast.AST, container: ast.AST,
            module: ModuleContext) -> bool:
    if node is container:
        return True
    return any(ancestor is container
               for ancestor in ancestors(node, module.parents))


def _node_within_branch(node: ast.AST, stmt: ast.If | ast.While,
                        method: FunctionDecl) -> bool:
    """The node sits in the statement's body/orelse (not its test)."""
    module = method.module
    if not _within(node, stmt, module):
        return False
    return not _within(node, stmt.test, module)


@register_deep
class CompoundUpdateRule(_AtomicRuleBase):
    """ATM002 — read-modify-write outside the inferred guard."""

    rule_id = "ATM002"
    summary = ("compound updates (`x.n += 1`, `d[k] = d.get(k, ...)`)"
               " on an attribute whose other writes hold a lock must "
               "hold that lock too — interleaving loses updates")
    waiver = ("atomic(<witness>) on the update, naming the evidence of"
              " atomicity (e.g. a GIL-atomic single store)")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for _qualname, flow, analyzer in self._class_flows(deep, config):
            module = flow.decl.module
            for attr in sorted(flow.guards):
                if attr in flow.declared_shared:
                    continue  # LCK001 owns annotated attributes
                token = flow.guards[attr]
                witness = next(
                    (site for site in flow.writes.get(attr, [])
                     if token in site.held), None)
                for site in flow.writes.get(attr, []):
                    if not site.is_rmw:
                        continue
                    if token in analyzer.held_at(site.function, site.node):
                        continue
                    if _waived(module, site.line):
                        continue
                    trace = []
                    if witness is not None:
                        trace.append(TraceEntry(
                            module.path, witness.line, witness.function,
                            f"writes self.{attr} under {_short(token)} "
                            f"(establishes the guard)"))
                    trace.append(TraceEntry(
                        module.path, site.line, site.function,
                        f"read-modify-write on self.{attr} without "
                        f"{_short(token)}"))
                    yield self.finding(
                        module.path, site.line, site.column,
                        f"read-modify-write on self.{attr} without "
                        f"{_short(token)}, which its other writes hold; "
                        f"two threads interleaving here lose an update "
                        f"— wrap it in `with {_short(token)}:` or waive "
                        f"with `# staticcheck: atomic(<witness>)`",
                        trace=trace,
                    )


@register_deep
class UnsafePublicationRule(ProjectRule):
    """PUB001 — ``self`` escapes ``__init__`` before construction ends."""

    rule_id = "PUB001"
    summary = ("`self` must not escape __init__ (thread start, "
               "callback registry, module global) before every "
               "attribute __init__ assigns exists")
    waiver = "atomic(<witness>) on the escape, naming the publication point"
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for qualname in sorted(deep.project.classes):
            decl = deep.project.classes[qualname]
            init_fq = decl.methods.get("__init__")
            if init_fq is None:
                continue
            init = deep.project.functions[init_fq]
            yield from self._check_init(decl, init)

    def _check_init(self, decl: ClassDecl,
                    init: FunctionDecl) -> Iterable[Finding]:
        module = decl.module
        first_assigned: dict[str, int] = {}
        for node in ast.walk(init.node):
            mutation = mutated_attr(node)
            if mutation is not None:
                line = getattr(node, "lineno", init.node.lineno)
                attr, _ = mutation
                if attr not in first_assigned or line < first_assigned[attr]:
                    first_assigned[attr] = line
        for line, column, note in self._escapes(module, init):
            missing = sorted(
                attr for attr, assigned in first_assigned.items()
                if assigned > line
            )
            if not missing or _waived(module, line):
                continue
            attrs = ", ".join(f"self.{attr}" for attr in missing[:4])
            if len(missing) > 4:
                attrs += ", ..."
            yield self.finding(
                module.path, line, column,
                f"unsafe publication: {note} before {attrs} "
                f"{'is' if len(missing) == 1 else 'are'} assigned — "
                f"another thread can observe the half-constructed "
                f"{decl.name}; finish initializing every attribute "
                f"first, or waive with "
                f"`# staticcheck: atomic(<witness>)`",
                trace=[
                    TraceEntry(module.path, line, init.qualname, note),
                    TraceEntry(
                        module.path,
                        min(first_assigned[attr] for attr in missing),
                        init.qualname,
                        f"{attrs} assigned only later in __init__"),
                ],
            )

    def _escapes(self, module: ModuleContext, init: FunctionDecl,
                 ) -> Iterable[tuple[int, int, str]]:
        """(line, column, note) for each point where ``self`` leaves
        ``__init__``: a self-bound thread starting, ``self`` passed to
        a foreign call, or ``self`` stored in a module global."""
        thread_bindings = _self_thread_bindings(module, init)
        composed = _composition_calls(init)
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "start":
                bound = _binding_name(func.value)
                if bound is not None and bound in thread_bindings:
                    yield (node.lineno, node.col_offset,
                           f"starts thread {bound} targeting a bound "
                           f"method of self")
                    continue
                if _is_self_thread_ctor(module, func.value):
                    yield (node.lineno, node.col_offset,
                           "starts a thread targeting a bound method "
                           "of self")
                    continue
            if node in composed:
                continue  # self.x = Helper(self): owned composition
            if not _passes_self(node):
                continue
            segments = dotted_segments(func)
            if segments is not None and segments[0] == "self":
                continue  # self.helper(self) stays within the object
            target = ".".join(segments) if segments else "a callee"
            yield (node.lineno, node.col_offset,
                   f"passes self to {target}()")
        yield from _global_stores(init)


def _passes_self(call: ast.Call) -> bool:
    candidates = [*call.args,
                  *(kw.value for kw in call.keywords)]
    return any(isinstance(arg, ast.Name) and arg.id == "self"
               for arg in candidates)


def _binds_self(call: ast.Call) -> bool:
    """Any argument is ``self`` or a ``self.<attr>`` bound method."""
    candidates = [*call.args, *(kw.value for kw in call.keywords)]
    for arg in candidates:
        if isinstance(arg, ast.Name) and arg.id == "self":
            return True
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self"):
            return True
    return False


def _is_self_thread_ctor(module: ModuleContext, expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    segments = dotted_segments(expr.func)
    if segments is None:
        return False
    resolved = _external_dotted(module, segments)
    return resolved == "threading.Thread" and _binds_self(expr)


def _self_thread_bindings(module: ModuleContext,
                          init: FunctionDecl) -> set[str]:
    """Names (``worker`` or ``self._thread``) assigned a Thread whose
    target binds ``self`` inside ``__init__``."""
    bindings: set[str] = set()
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        if not _is_self_thread_ctor(module, node.value):
            continue
        bound = _binding_name(node.targets[0])
        if bound is not None:
            bindings.add(bound)
    return bindings


def _binding_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return f"self.{expr.attr}"
    return None


def _composition_calls(init: FunctionDecl) -> set[ast.Call]:
    """Calls whose result is assigned straight to ``self.<attr>`` —
    ``self.sensors = MonitorSensors(self)`` composes an owned helper,
    it does not publish ``self`` to another thread."""
    composed: set[ast.Call] = set()
    for node in ast.walk(init.node):
        if (isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"):
            composed.add(node.value)
    return composed


def _global_stores(init: FunctionDecl) -> Iterable[tuple[int, int, str]]:
    """``REGISTRY[key] = self`` / ``global X; X = self`` stores."""
    declared_global: set[str] = set()
    for node in ast.walk(init.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(init.node):
        if not isinstance(node, ast.Assign):
            continue
        if not any(isinstance(value, ast.Name) and value.id == "self"
                   for value in ast.walk(node.value)):
            continue
        for target in node.targets:
            root = target
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if not isinstance(root, ast.Name) or root.id == "self":
                continue
            is_container_store = isinstance(target,
                                            (ast.Subscript, ast.Attribute))
            if root.id in declared_global or is_container_store:
                yield (node.lineno, node.col_offset,
                       f"stores self through `{root.id}`")
