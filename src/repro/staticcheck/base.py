"""Rule base class and registry.

A rule is a class with a stable ``rule_id``, a short ``summary`` and a
``check`` method yielding :class:`Finding` objects for one module.
Decorating it with :func:`register` adds it to the global registry the
driver runs; :func:`all_rules` instantiates them in rule-id order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Type, TypeVar

from repro.staticcheck.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.config import StaticcheckConfig
    from repro.staticcheck.driver import ModuleContext


class Rule(ABC):
    """One invariant checked over a module's AST."""

    rule_id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR

    @abstractmethod
    def check(self, module: "ModuleContext",
              config: "StaticcheckConfig") -> Iterable[Finding]:
        """Yield findings for ``module``."""

    def finding(self, module: "ModuleContext", line: int, column: int,
                message: str,
                severity: Severity | None = None) -> Finding:
        """Build a finding for this rule at a location in ``module``."""
        return Finding(
            path=module.path,
            line=line,
            column=column,
            rule_id=self.rule_id,
            severity=severity or self.default_severity,
            message=message,
        )


_REGISTRY: dict[str, Type[Rule]] = {}

R = TypeVar("R", bound=Type[Rule])


def register(rule_class: R) -> R:
    """Class decorator adding ``rule_class`` to the registry."""
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(
            f"{rule_class.__name__} must define a non-empty rule_id")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"duplicate rule id {rule_id!r}: "
            f"{existing.__name__} vs {rule_class.__name__}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
