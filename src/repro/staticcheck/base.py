"""Rule base classes and registries.

Two kinds of rules exist:

* :class:`Rule` — intra-procedural: a ``check`` method yielding
  :class:`Finding` objects for one module's AST.  Registered with
  :func:`register`, instantiated by :func:`all_rules`.
* :class:`ProjectRule` — interprocedural (the ``--deep`` phase): a
  ``check_project`` method over the whole-program
  :class:`~repro.staticcheck.lockflow.DeepContext` (call graph +
  held-lock flow).  Registered with :func:`register_deep`,
  instantiated by :func:`all_deep_rules`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Sequence, Type, TypeVar

from repro.staticcheck.findings import Finding, Severity, TraceEntry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.staticcheck.config import StaticcheckConfig
    from repro.staticcheck.driver import ModuleContext
    from repro.staticcheck.lockflow import DeepContext


class Rule(ABC):
    """One invariant checked over a module's AST."""

    rule_id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR
    waiver: str = ""
    """The rule's annotation/waiver grammar, shown by ``--list-rules``
    — e.g. ``"atomic(<witness>) on the reported line"``.  Empty when
    the only escape hatch is ``ignore[<rule>]`` (always available)."""

    @abstractmethod
    def check(self, module: "ModuleContext",
              config: "StaticcheckConfig") -> Iterable[Finding]:
        """Yield findings for ``module``."""

    def finding(self, module: "ModuleContext", line: int, column: int,
                message: str,
                severity: Severity | None = None) -> Finding:
        """Build a finding for this rule at a location in ``module``."""
        return Finding(
            path=module.path,
            line=line,
            column=column,
            rule_id=self.rule_id,
            severity=severity or self.default_severity,
            message=message,
        )


class ProjectRule(ABC):
    """One invariant checked over the whole analyzed program."""

    rule_id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR
    waiver: str = ""
    """See :attr:`Rule.waiver`."""

    @abstractmethod
    def check_project(self, deep: "DeepContext",
                      config: "StaticcheckConfig") -> Iterable[Finding]:
        """Yield findings for the analyzed program."""

    def finding(self, path: str, line: int, column: int, message: str,
                trace: Sequence[TraceEntry] = (),
                severity: Severity | None = None) -> Finding:
        """Build a deep finding with its evidence trace."""
        return Finding(
            path=path,
            line=line,
            column=column,
            rule_id=self.rule_id,
            severity=severity or self.default_severity,
            message=message,
            trace=tuple(trace),
        )


_REGISTRY: dict[str, Type[Rule]] = {}
_DEEP_REGISTRY: dict[str, Type[ProjectRule]] = {}

R = TypeVar("R", bound=Type[Rule])
P = TypeVar("P", bound=Type[ProjectRule])


def _add(registry: dict, rule_class: type) -> None:
    rule_id = rule_class.rule_id
    if not rule_id:
        raise ValueError(
            f"{rule_class.__name__} must define a non-empty rule_id")
    existing = _REGISTRY.get(rule_id) or _DEEP_REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(
            f"duplicate rule id {rule_id!r}: "
            f"{existing.__name__} vs {rule_class.__name__}")
    registry[rule_id] = rule_class


def register(rule_class: R) -> R:
    """Class decorator adding ``rule_class`` to the per-module registry."""
    _add(_REGISTRY, rule_class)
    return rule_class


def register_deep(rule_class: P) -> P:
    """Class decorator adding ``rule_class`` to the deep registry."""
    _add(_DEEP_REGISTRY, rule_class)
    return rule_class


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, ordered by rule id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def all_deep_rules() -> list[ProjectRule]:
    """Fresh instances of every deep rule, ordered by rule id."""
    return [_DEEP_REGISTRY[rule_id]() for rule_id in sorted(_DEEP_REGISTRY)]


def rule_ids() -> tuple[str, ...]:
    return tuple(sorted((*_REGISTRY, *_DEEP_REGISTRY)))
