"""Deep (interprocedural) rule families, run by ``repro lint --deep``.

``LCK003`` — lock-order cycles.  The held-lock propagation builds the
acquisition-order graph (lock B acquired while lock A is held, across
function and class boundaries); any cycle in that graph is a potential
deadlock between the threads of the monitor, daemon and engine.

``LCK004`` — blocking call reachable while a lock is held.  A sensor or
daemon thread sleeping, doing socket/file I/O, joining a thread or
executing SQL while holding a lock stalls every other thread contending
for it — exactly the watchdog-style interference the paper's integrated
design exists to avoid.

``GRW001`` — unbounded container growth in monitor paths.  The paper
fixes the monitor's memory footprint with moving windows; any container
on the monitor path that grows (append / ``+=`` / ``d[k] = v``) without
an eviction mechanism, ``maxlen``, a capacity check or a
``# staticcheck: bounded(<witness>)`` declaration breaks that
guarantee.

``SNS002`` — sensor-call budget.  A sensor call must cost 1–2 µs
regardless of database size, so sensor record paths must not loop over
catalog/engine collections nor call (transitively) into functions that
do.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.base import ProjectRule, register_deep
from repro.staticcheck.callgraph import (
    FunctionDecl,
    ProjectContext,
    module_name_for,
)
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.lockflow import DeepContext, OrderEdge

_MAX_DEPTH = 12


@register_deep
class LockOrderCycleRule(ProjectRule):
    """LCK003 — cycle in the lock acquisition-order graph."""

    rule_id = "LCK003"
    summary = ("lock acquisition order must be acyclic across the "
               "whole program (cycles are potential deadlocks)")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        edges: dict[str, dict[str, OrderEdge]] = {}
        for edge in deep.lockflow.order_edges:
            edges.setdefault(edge.held, {})[edge.acquired] = edge
        for cycle in _distinct_cycles(edges):
            trace: list[TraceEntry] = []
            for index, token in enumerate(cycle):
                successor = cycle[(index + 1) % len(cycle)]
                trace.extend(edges[token][successor].trace)
            first = edges[cycle[0]][cycle[1 % len(cycle)]]
            anchor = first.trace[0]
            order = " -> ".join([*cycle, cycle[0]])
            yield self.finding(
                anchor.path, anchor.line, 0,
                f"lock-order cycle: {order}; two threads taking these "
                f"locks in different orders can deadlock — pick one "
                f"global order and document it",
                trace=trace,
            )


def _distinct_cycles(edges: dict[str, dict[str, OrderEdge]],
                     ) -> Iterator[tuple[str, ...]]:
    """Each elementary cycle once, rotated to start at its smallest
    token (bounded DFS; lock graphs are tiny)."""
    seen: set[tuple[str, ...]] = set()

    def visit(start: str, node: str, path: list[str]) -> Iterator[
            tuple[str, ...]]:
        for successor in sorted(edges.get(node, {})):
            if successor == start:
                cycle = tuple(path)
                smallest = min(range(len(cycle)),
                               key=lambda i: cycle[i])
                canonical = cycle[smallest:] + cycle[:smallest]
                if canonical not in seen:
                    seen.add(canonical)
                    yield canonical
            elif successor not in path and len(path) < 8:
                yield from visit(start, successor, [*path, successor])

    for start in sorted(edges):
        yield from visit(start, start, [start])


@register_deep
class BlockingUnderLockRule(ProjectRule):
    """LCK004 — blocking call reachable while a lock is held."""

    rule_id = "LCK004"
    summary = ("no blocking call (sleep, socket/file I/O, SQL "
               "execution, untimed queue.get/join) may be reachable "
               "while a lock is held")
    waiver = ("coldpath(<witness>) on the blocking callee when it is"
              " provably off every locked path")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        for chain in deep.lockflow.blocking:
            yield self.finding(
                chain.path, chain.line, chain.column,
                f"blocking call {chain.callee}() is reachable while "
                f"{chain.token} is held; move the blocking work "
                f"outside the lock or snapshot state under the lock "
                f"and operate on the copy",
                trace=chain.trace,
            )


# -- GRW001 -----------------------------------------------------------------

GROWTH_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "setdefault",
    "update",
})
SHRINK_MUTATORS = frozenset({
    "pop", "popitem", "popleft", "clear", "remove", "discard",
})
_CONTAINER_CTORS = frozenset({
    "list", "dict", "set", "OrderedDict", "defaultdict", "deque",
    "Counter",
})


def _container_decl(value: ast.expr) -> tuple[bool, bool]:
    """(is a container construction, is inherently bounded)."""
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True, False
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        if name in _CONTAINER_CTORS:
            bounded = any(kw.arg == "maxlen" and
                          not (isinstance(kw.value, ast.Constant)
                               and kw.value.value is None)
                          for kw in value.keywords)
            return True, bounded
    return False, False


def _base_self_attr(expr: ast.expr) -> str | None:
    """``self.attr`` / ``self.attr[k]`` / ``self.attr[k1][k2]`` →
    ``attr``."""
    while isinstance(expr, ast.Subscript):
        expr = expr.value
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return expr.attr
    return None


@register_deep
class UnboundedGrowthRule(ProjectRule):
    """GRW001 — container in a monitor path grows without a bound."""

    rule_id = "GRW001"
    summary = ("containers in monitor/sensor paths must be bounded: "
               "an eviction call, maxlen, a capacity check or a "
               "`# staticcheck: bounded(...)` declaration")
    waiver = ("bounded(<witness>) on the container, naming the eviction"
              " mechanism or capacity proof")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        project = deep.project
        for path, module in project.modules.items():
            if not config.path_matches(path, config.growth_scope_paths):
                continue
            modname = module_name_for(path)
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(project, module,
                                                 modname, node)

    def _check_class(self, project: ProjectContext,
                     module: ModuleContext, modname: str,
                     class_node: ast.ClassDef) -> Iterable[Finding]:
        containers: dict[str, tuple[ast.stmt, bool, bool]] = {}
        # attr -> (declaration stmt, inherently bounded, has bounded()).
        for stmt in ast.walk(class_node):
            attr, value = _assigned_self_attr(stmt)
            if attr is None or value is None or attr in containers:
                continue
            is_container, inherently_bounded = _container_decl(value)
            if not is_container:
                continue
            declared_bounded = any(
                module.directives(line, "bounded")
                for line in _stmt_lines(stmt)
            )
            containers[attr] = (stmt, inherently_bounded, declared_bounded)
        if not containers:
            return
        evidence = _eviction_evidence(class_node)
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue
            for site_attr, site in _growth_sites(method):
                info = containers.get(site_attr)
                if info is None:
                    continue
                decl_stmt, inherently_bounded, declared_bounded = info
                if inherently_bounded or declared_bounded:
                    continue
                if site_attr in evidence:
                    continue
                qualname = f"{modname}.{class_node.name}.{method.name}"
                decl_entry = TraceEntry(
                    path=module.path, line=decl_stmt.lineno,
                    function=f"{modname}.{class_node.name}.__init__",
                    note=f"declares container self.{site_attr}")
                grow_entry = TraceEntry(
                    path=module.path, line=site.lineno,
                    function=qualname,
                    note=f"grows self.{site_attr} with no bound")
                yield self.finding(
                    module.path, site.lineno, site.col_offset,
                    f"container self.{site_attr} grows in "
                    f"{class_node.name}.{method.name} but "
                    f"{class_node.name} never evicts from it; add an "
                    f"eviction path, a capacity check, or declare the "
                    f"bound with `# staticcheck: bounded(<witness>)` "
                    f"on the declaration",
                    trace=[decl_entry, grow_entry],
                )


def _assigned_self_attr(stmt: ast.AST,
                        ) -> tuple[str | None, ast.expr | None]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target: ast.expr = stmt.targets[0]
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target = stmt.target
        value = stmt.value
    else:
        return None, None
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr, value
    return None, None


def _stmt_lines(stmt: ast.AST) -> range:
    end = getattr(stmt, "end_lineno", None) or stmt.lineno
    return range(stmt.lineno, end + 1)


def _eviction_evidence(class_node: ast.ClassDef) -> set[str]:
    """Attrs the class provably shrinks or bounds somewhere."""
    evidence: set[str] = set()
    for node in ast.walk(class_node):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in SHRINK_MUTATORS):
                attr = _base_self_attr(func.value)
                if attr is not None:
                    evidence.add(attr)
            # ``len(self.attr)`` anywhere in the class is taken as a
            # capacity check (the ring-buffer idiom compares it to a
            # capacity before admitting).
            if (isinstance(func, ast.Name) and func.id == "len"
                    and node.args):
                attr = _base_self_attr(node.args[0])
                if attr is not None:
                    evidence.add(attr)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = _base_self_attr(target)
                if attr is not None:
                    evidence.add(attr)
    # Reassignment outside __init__ resets the container.
    for method in class_node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue
        for stmt in ast.walk(method):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        evidence.add(target.attr)
    return evidence


def _growth_sites(method: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in GROWTH_MUTATORS):
                attr = _base_self_attr(func.value)
                if attr is not None:
                    yield attr, node
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _base_self_attr(target)
                    if attr is not None:
                        yield attr, node
        elif isinstance(node, ast.AugAssign):
            attr = _base_self_attr(node.target)
            if attr is not None:
                yield attr, node


# -- SNS002 -----------------------------------------------------------------


@register_deep
class SensorBudgetRule(ProjectRule):
    """SNS002 — sensor path loops over catalog/engine-sized data."""

    rule_id = "SNS002"
    summary = ("sensor record paths must stay O(1): no loops over "
               "catalog/engine collections, directly or through calls")
    waiver = ("bounded(<witness>) on the loop, naming why the iterable"
              " is O(1) in catalog size")
    default_severity = Severity.ERROR

    def check_project(self, deep: DeepContext,
                      config: StaticcheckConfig) -> Iterable[Finding]:
        project = deep.project
        banned = set(config.sensor_cardinality_segments)
        loops: dict[str, list[tuple[ast.For, str]]] = {}
        for qualname, decl in project.functions.items():
            found = list(_cardinality_loops(decl, banned))
            if found:
                loops[qualname] = found
        for qualname, decl in project.functions.items():
            if not config.path_matches(decl.module.path,
                                       config.sensor_module_paths):
                continue
            yield from self._direct(decl, loops.get(qualname, []))
            yield from self._transitive(project, decl, loops)

    def _direct(self, decl: FunctionDecl,
                found: list[tuple[ast.For, str]]) -> Iterable[Finding]:
        for loop, chain in found:
            entry = TraceEntry(
                path=decl.module.path, line=decl.node.lineno,
                function=decl.qualname,
                note="sensor record path entry")
            loop_entry = TraceEntry(
                path=decl.module.path, line=loop.lineno,
                function=decl.qualname,
                note=f"loops over {chain} (size scales with the "
                     f"catalog/tables)")
            yield self.finding(
                decl.module.path, loop.lineno, loop.col_offset,
                f"sensor path {decl.name} loops over {chain}; the "
                f"per-call budget is O(1) — sensors may only record "
                f"values already in hand",
                trace=[entry, loop_entry],
            )

    def _transitive(self, project: ProjectContext, decl: FunctionDecl,
                    loops: dict[str, list[tuple[ast.For, str]]],
                    ) -> Iterable[Finding]:
        for edge in project.calls_from(decl.qualname):
            if edge.external:
                continue
            path = self._find_loop_path(project, edge.callee, loops,
                                        visited={decl.qualname}, depth=0)
            if path is None:
                continue
            chain_entries = [TraceEntry(
                path=decl.module.path, line=edge.line,
                function=decl.qualname,
                note=f"calls {edge.callee}()")]
            for callee_qualname, step_edge in path[:-1]:
                step_decl = project.functions[callee_qualname]
                chain_entries.append(TraceEntry(
                    path=step_decl.module.path, line=step_edge.line,
                    function=callee_qualname,
                    note=f"calls {step_edge.callee}()"))
            looper, loop, chain = path[-1]
            looper_decl = project.functions[looper]
            chain_entries.append(TraceEntry(
                path=looper_decl.module.path, line=loop.lineno,
                function=looper,
                note=f"loops over {chain}"))
            yield self.finding(
                decl.module.path, edge.line, edge.column,
                f"sensor path {decl.name} calls {edge.callee}() whose "
                f"cost scales with table/catalog cardinality (it loops "
                f"over {chain}); sensors must stay O(1) per call",
                trace=chain_entries,
            )

    def _find_loop_path(self, project: ProjectContext, qualname: str,
                        loops: dict[str, list[tuple[ast.For, str]]],
                        visited: set[str], depth: int):
        """Shortest call path from ``qualname`` to a cardinality loop,
        as ``[(func, edge), ..., (func, loop, chain)]``; None if none
        is reachable."""
        if qualname in visited or depth > _MAX_DEPTH:
            return None
        visited.add(qualname)
        found = loops.get(qualname)
        if found:
            loop, chain = found[0]
            return [(qualname, loop, chain)]
        for edge in project.calls_from(qualname):
            if edge.external:
                continue
            tail = self._find_loop_path(project, edge.callee, loops,
                                        visited, depth + 1)
            if tail is not None:
                return [(qualname, edge), *tail]
        return None


def _cardinality_loops(decl: FunctionDecl,
                       banned: set[str]) -> Iterator[tuple[ast.For, str]]:
    for node in ast.walk(decl.node):
        if not isinstance(node, ast.For):
            continue
        segments = _iterable_segments(node.iter)
        hits = [s for s in segments if s in banned]
        if hits:
            yield node, ".".join(segments)


def _iterable_segments(expr: ast.expr) -> list[str]:
    """Every name along an iterable expression, crossing calls and
    subscripts: ``self.engine.catalog.tables()`` →
    ``['self', 'engine', 'catalog', 'tables']``."""
    segments: list[str] = []
    stack = [expr]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Attribute):
            segments.append(current.attr)
            stack.append(current.value)
        elif isinstance(current, ast.Name):
            segments.append(current.id)
        elif isinstance(current, ast.Call):
            stack.append(current.func)
        elif isinstance(current, ast.Subscript):
            stack.append(current.value)
    segments.reverse()
    return segments
