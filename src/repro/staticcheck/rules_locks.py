"""LCK — lock discipline over annotated shared state.

``LCK001``: an attribute declared ``# staticcheck: shared(<lock>)`` is
mutated outside ``__init__``, outside any ``with self.<lock>:`` block,
in a method not annotated ``# staticcheck: guarded-by(<lock>)``.

``LCK002``: a ``shared``/``guarded-by`` annotation names a lock the
class never assigns (``self.<lock> = ...``) — almost always a typo
that would silently disable the check.

Mutations recognised: plain/augmented/annotated assignment to
``self.attr`` (including ``self.attr[i] = ...``), ``del self.attr``,
and calls of known mutating container methods
(``self.attr.append(...)``, ``.pop``, ``.clear``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.staticcheck.astutil import (
    MUTATOR_METHODS,
    ancestors,
    mutated_attr,
    self_attribute,
)
from repro.staticcheck.base import Rule, register
from repro.staticcheck.config import StaticcheckConfig
from repro.staticcheck.driver import ModuleContext
from repro.staticcheck.findings import Finding, Severity

__all__ = ["MUTATOR_METHODS", "UnguardedSharedMutationRule",
           "UnknownLockRule"]


def _class_methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node  # type: ignore[misc]


def _self_assignments(class_node: ast.ClassDef) -> dict[str, list[ast.stmt]]:
    """attr name -> assignment statements of ``self.<attr>`` anywhere
    in the class body (used to declare shared attrs and to validate
    that annotated locks exist)."""
    assigned: dict[str, list[ast.stmt]] = {}
    for node in ast.walk(class_node):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                attr = self_attribute(leaf)  # type: ignore[arg-type]
                if attr is not None:
                    assigned.setdefault(attr, []).append(node)
    return assigned


def _shared_declarations(module: ModuleContext,
                         class_node: ast.ClassDef) -> dict[str, tuple[str, ...]]:
    """Shared attr -> lock names, from ``shared(...)`` annotations on
    ``self.<attr> = ...`` lines inside the class."""
    shared: dict[str, tuple[str, ...]] = {}
    for attr, statements in _self_assignments(class_node).items():
        for statement in statements:
            for line in _statement_lines(statement):
                for directive in module.directives(line, "shared"):
                    if directive.args:
                        shared[attr] = directive.args
    return shared


def _statement_lines(statement: ast.stmt) -> range:
    """All source lines a (possibly multi-line) statement spans."""
    end = getattr(statement, "end_lineno", None) or statement.lineno
    return range(statement.lineno, end + 1)


def _guarding_locks(node: ast.AST, module: ModuleContext) -> set[str]:
    """Names of ``self.<lock>`` context managers on enclosing ``with``
    statements, searched up to the nearest enclosing function."""
    locks: set[str] = set()
    for ancestor in ancestors(node, module.parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                attr = self_attribute(item.context_expr)
                if attr is not None:
                    locks.add(attr)
    return locks


def _enclosing_method(node: ast.AST, module: ModuleContext,
                      ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in ancestors(node, module.parents):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


@register
class UnguardedSharedMutationRule(Rule):
    """LCK001 — shared attribute mutated without holding its lock."""

    rule_id = "LCK001"
    summary = ("attributes marked shared(<lock>) may only be mutated "
               "under `with self.<lock>:` or in a guarded-by method")
    waiver = ("declare with `shared(<lock>)` on the attribute; a deliberate"
              " lock-free mutation site needs `ignore[LCK001]` on its line")
    default_severity = Severity.ERROR

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            shared = _shared_declarations(module, class_node)
            if not shared:
                continue
            yield from self._check_class(module, class_node, shared)

    def _check_class(self, module: ModuleContext, class_node: ast.ClassDef,
                     shared: dict[str, tuple[str, ...]],
                     ) -> Iterable[Finding]:
        init_methods = {
            m for m in _class_methods(class_node) if m.name == "__init__"
        }
        for node in ast.walk(class_node):
            mutation = mutated_attr(node)
            if mutation is None:
                continue
            attr, location = mutation
            locks = shared.get(attr)
            if locks is None:
                continue
            method = _enclosing_method(location, module)
            if method is None or method in init_methods:
                continue  # class body / construction happens-before
            guard = _guarding_locks(location, module)
            if guard & set(locks):
                continue
            directive = module.function_directive(method, "guarded-by")
            if directive is not None and set(directive.args) & set(locks):
                continue
            lock_list = " or ".join(f"self.{lock}" for lock in locks)
            yield self.finding(
                module,
                getattr(location, "lineno", class_node.lineno),
                getattr(location, "col_offset", 0),
                f"shared attribute self.{attr} mutated in "
                f"{class_node.name}.{method.name} without holding "
                f"{lock_list}; wrap the mutation in "
                f"`with self.{locks[0]}:` or annotate the method "
                f"`# staticcheck: guarded-by({locks[0]})` if every "
                f"caller already holds it",
            )


@register
class UnknownLockRule(Rule):
    """LCK002 — annotation references a lock the class never creates."""

    rule_id = "LCK002"
    summary = ("shared()/guarded-by() must name a lock attribute that "
               "the class actually assigns")
    default_severity = Severity.WARNING

    def check(self, module: ModuleContext,
              config: StaticcheckConfig) -> Iterable[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            assigned = set(_self_assignments(class_node))
            declared: list[tuple[int, int, str]] = []
            for attr, statements in _self_assignments(class_node).items():
                for statement in statements:
                    for line in _statement_lines(statement):
                        for directive in module.directives(line, "shared"):
                            for lock in directive.args:
                                declared.append(
                                    (statement.lineno,
                                     statement.col_offset, lock))
            for method in _class_methods(class_node):
                directive = module.function_directive(method, "guarded-by")
                if directive is not None:
                    for lock in directive.args:
                        declared.append(
                            (method.lineno, method.col_offset, lock))
            for line, column, lock in declared:
                if lock not in assigned:
                    yield self.finding(
                        module, line, column,
                        f"annotation names lock self.{lock}, but class "
                        f"{class_node.name} never assigns that "
                        f"attribute (typo?)",
                    )
