"""``repro lint`` — one entry point for all static analysis.

Runs the project-specific AST rules, then (in text mode) ruff and mypy
when they are installed; environments without them just get a "skipped"
note, so the custom analysis works from a bare checkout.

Exit status: 0 when everything is clean, 1 on any finding or
third-party tool failure, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Sequence

import repro.staticcheck  # noqa: F401  (registers all rules)
from repro.staticcheck.base import all_deep_rules, all_rules
from repro.staticcheck.config import load_config
from repro.staticcheck.driver import analyze_paths, analyze_project
from repro.staticcheck.reporters import render_json, render_text

DEFAULT_PATHS = ("src/repro",)


def _run_tool(module: str, arguments: list[str]) -> int | None:
    """Run an installed third-party checker; None when unavailable."""
    if importlib.util.find_spec(module) is None:
        return None
    completed = subprocess.run(
        [sys.executable, "-m", module, *arguments], check=False)
    return completed.returncode


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis "
                    "(+ ruff/mypy when installed)")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format",
                        help="report format (json skips ruff/mypy)")
    parser.add_argument("--skip-tools", action="store_true",
                        help="run only the custom AST rules, "
                             "never ruff/mypy")
    parser.add_argument("--deep", action="store_true",
                        help="also run the interprocedural phase "
                             "(call graph + held-lock propagation: "
                             "LCK003/LCK004/GRW001/SNS002)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        for deep_rule in all_deep_rules():
            print(f"{deep_rule.rule_id}  [deep] {deep_rule.summary}")
        return 0

    missing = [path for path in arguments.paths
               if not Path(path).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    config = load_config(Path(arguments.paths[0]))
    findings = analyze_paths(arguments.paths, config)
    if arguments.deep:
        findings.extend(analyze_project(arguments.paths, config))
        findings.sort(key=lambda f: f.sort_key)

    if arguments.output_format == "json":
        print(render_json(findings))
        return 1 if findings else 0

    print(render_text(findings))
    status = 1 if findings else 0

    if not arguments.skip_tools:
        for tool, tool_args in (
            ("ruff", ["check", *arguments.paths]),
            ("mypy", []),  # scope comes from [tool.mypy] files=...
        ):
            code = _run_tool(tool, tool_args)
            if code is None:
                print(f"{tool}: skipped (not installed)")
            elif code != 0:
                status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
