"""``repro lint`` — one entry point for all static analysis.

Runs the project-specific AST rules, then (in text mode) ruff and mypy
when they are installed; environments without them just get a "skipped"
note, so the custom analysis works from a bare checkout.

``--deep`` adds the interprocedural phase; ``--cache`` makes both
phases incremental (results keyed by content hash under
``--cache-dir``, default ``.staticcheck-cache``); ``--budget``
enforces per-rule wall-time ceilings (BGT001 on overrun); ``--changed``
narrows the shallow phase to the files changed since the branch point
plus their reverse call-graph dependents.

Exit status: 0 when everything is clean, 1 on any finding or
third-party tool failure, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Sequence

import repro.staticcheck  # noqa: F401  (registers all rules)
from repro.staticcheck.base import all_deep_rules, all_rules
from repro.staticcheck.cache import AnalysisCache, git_changed_files
from repro.staticcheck.config import load_config
from repro.staticcheck.dataflow import file_dependencies
from repro.staticcheck.driver import (
    AnalysisStats,
    analyze_paths,
    analyze_project,
    budget_findings,
    iter_python_files,
)
from repro.staticcheck.reporters import (
    render_json,
    render_sarif,
    render_text,
)

DEFAULT_PATHS = ("src/repro",)
DEFAULT_CACHE_DIR = ".staticcheck-cache"


def _run_tool(module: str, arguments: list[str]) -> int | None:
    """Run an installed third-party checker; None when unavailable."""
    if importlib.util.find_spec(module) is None:
        return None
    completed = subprocess.run(
        [sys.executable, "-m", module, *arguments], check=False)
    return completed.returncode


_HOTNESS_DIRECTIVES = ("hotpath", "coldpath", "allocfree")

_OWNERSHIP_DIRECTIVES = ("owned", "shared")

_DOMAIN_DIRECTIVES = ("domain", "mixeddomain")


def _changed_targets(paths: Sequence[str]) -> list[str] | None:
    """The ``--changed`` file set: files under ``paths`` changed since
    the branch point, plus every file whose analysis can observe them
    (reverse call-graph dependents) — and, for changed files carrying
    hot-path annotations, every file *they* transitively call, because
    hotness flows caller → callee: editing only a ``hotpath`` or
    ``allocfree`` comment re-hotness-classifies downstream files whose
    content is untouched.  Ownership behaves the same way: thread
    roles flow caller → callee from ``threading.Thread`` start sites,
    so a changed file containing a start site or an
    ``owned``/``shared`` directive re-classifies every file it
    transitively calls.  Integer domains flow the same way — a
    ``domain(...)`` declaration on a producer re-types every caller —
    so changed files carrying ``domain``/``mixeddomain`` directives
    forward-seed too.  None means "no git" — the caller falls back
    to a full run."""
    changed = git_changed_files()
    if changed is None:
        return None
    all_files = [str(p) for p in iter_python_files(paths)]
    in_scope = sorted(set(all_files) & changed)
    if not in_scope:
        return []
    # Build the call graph over the full path set so dependents of the
    # changed files are re-analyzed too.
    from repro.staticcheck.annotations import AnnotationError
    from repro.staticcheck.cache import (
        forward_dependencies,
        reverse_dependents,
    )
    from repro.staticcheck.callgraph import build_project
    from repro.staticcheck.driver import ModuleContext

    modules = []
    forward_seeds: list[str] = []
    for path in all_files:
        try:
            source = Path(path).read_text(encoding="utf-8")
            module = ModuleContext.from_source(path, source)
        except (OSError, SyntaxError, AnnotationError):
            continue
        modules.append(module)
        if path in in_scope and any(
                directive.name in (*_HOTNESS_DIRECTIVES,
                                   *_OWNERSHIP_DIRECTIVES,
                                   *_DOMAIN_DIRECTIVES)
                for directives in module.annotations.values()
                for directive in directives):
            forward_seeds.append(path)
    project = build_project(modules)
    from repro.staticcheck.ownership import thread_start_paths

    start_paths = thread_start_paths(project)
    forward_seeds.extend(path for path in in_scope
                         if path in start_paths
                         and path not in forward_seeds)
    deps = file_dependencies(project)
    targets = reverse_dependents(deps, in_scope)
    if forward_seeds:
        targets |= forward_dependencies(deps, forward_seeds)
    return sorted(targets & set(all_files))


def _print_rules() -> None:
    """``--list-rules``: every rule id, its one-line doc and waiver
    grammar, plus the annotation directives — all read from the rule
    classes and :data:`~repro.staticcheck.annotations.KNOWN_DIRECTIVES`
    so the listing cannot drift from what the analyzer enforces."""
    from repro.staticcheck.annotations import KNOWN_DIRECTIVES

    for rule in all_rules():
        print(f"{rule.rule_id}  {rule.summary}")
        if rule.waiver:
            print(f"{'':8}waiver: {rule.waiver}")
    for deep_rule in all_deep_rules():
        print(f"{deep_rule.rule_id}  [deep] {deep_rule.summary}")
        if deep_rule.waiver:
            print(f"{'':8}waiver: {deep_rule.waiver}")
    print()
    print("annotation grammar: # staticcheck: <directive>(<args>)")
    print(f"  directives: {', '.join(KNOWN_DIRECTIVES)}")
    print("  ignore[RULE1,RULE2] suppresses findings on its line; "
          "every other")
    print("  directive either declares an invariant (shared, "
          "guarded-by, owned,")
    print("  hotpath) or waives one with a named witness (bounded, "
          "atomic,")
    print("  allocfree, coldpath).")


def _emit_ownership_map(paths: Sequence[str], destination: str) -> int:
    """``--ownership-map``: run the thread-ownership phase over
    ``paths`` and emit the map as a schema-v5 report (``-`` = stdout).

    ``repro lint --ownership-map src/repro`` reads naturally but makes
    argparse bind ``src/repro`` to the flag; an existing directory or
    ``.py`` file is therefore reinterpreted as an analysis path."""
    from repro.staticcheck.ownership import compute_ownership_map

    target = Path(destination)
    if destination != "-" and (target.is_dir() or (
            target.suffix == ".py" and target.exists())):
        paths = [destination, *[p for p in paths if p != destination]]
        destination = "-"
    config = load_config(Path(paths[0]))
    result = compute_ownership_map(paths=paths, config=config)
    payload = render_json([], ownership=result.to_json())
    if destination == "-":
        print(payload)
    else:
        Path(destination).write_text(payload + "\n", encoding="utf-8")
        print(f"repro lint: ownership map written to {destination}")
    return 0


def _emit_domain_map(paths: Sequence[str], destination: str) -> int:
    """``--domain-map``: run the integer-domain phase over ``paths``
    and emit the map as a schema-v6 report (``-`` = stdout), with the
    same argparse path-reinterpretation as ``--ownership-map``."""
    from repro.staticcheck.domains import compute_domain_map

    target = Path(destination)
    if destination != "-" and (target.is_dir() or (
            target.suffix == ".py" and target.exists())):
        paths = [destination, *[p for p in paths if p != destination]]
        destination = "-"
    config = load_config(Path(paths[0]))
    result = compute_domain_map(paths=paths, config=config)
    payload = render_json([], domains=result.to_json())
    if destination == "-":
        print(payload)
    else:
        Path(destination).write_text(payload + "\n", encoding="utf-8")
        print(f"repro lint: domain map written to {destination}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific static analysis "
                    "(+ ruff/mypy when installed)")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to analyze "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="report format (json and sarif skip "
                             "ruff/mypy)")
    parser.add_argument("--skip-tools", action="store_true",
                        help="run only the custom AST rules, "
                             "never ruff/mypy")
    parser.add_argument("--deep", action="store_true",
                        help="also run the interprocedural phase "
                             "(call graph, held-lock propagation, "
                             "attribute dataflow and hot-path "
                             "propagation: LCK003/LCK004/GRW001/"
                             "SNS002/ATM001/ATM002/PUB001/"
                             "PRF001-PRF005)")
    parser.add_argument("--cache", action="store_true",
                        help="reuse results for unchanged files from "
                             "the analysis cache (and refresh it)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="analysis cache location "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--budget", action="store_true",
                        help="enforce per-rule wall-time ceilings "
                             "(rule_budget_default_s / "
                             "rule_budget_overrides); overruns fail "
                             "the lint with BGT001")
    parser.add_argument("--changed", action="store_true",
                        help="analyze only files changed since the "
                             "branch point plus their call-graph "
                             "dependents (shallow phase)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules, their "
                             "waiver grammar and the annotation "
                             "directives, then exit")
    parser.add_argument("--ownership-map", nargs="?", const="-",
                        default=None, metavar="PATH",
                        help="emit the inferred thread-ownership map "
                             "(JSON schema v6) for the analyzed paths "
                             "to PATH (default: stdout) and exit")
    parser.add_argument("--domain-map", nargs="?", const="-",
                        default=None, metavar="PATH",
                        help="emit the inferred integer-domain map "
                             "(JSON schema v6) for the analyzed paths "
                             "to PATH (default: stdout) and exit")
    arguments = parser.parse_args(argv)

    if arguments.list_rules:
        _print_rules()
        return 0

    missing = [path for path in arguments.paths
               if not Path(path).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if arguments.ownership_map is not None:
        return _emit_ownership_map(arguments.paths,
                                   arguments.ownership_map)

    if arguments.domain_map is not None:
        return _emit_domain_map(arguments.paths, arguments.domain_map)

    config = load_config(Path(arguments.paths[0]))
    cache = (AnalysisCache.open(arguments.cache_dir, config)
             if arguments.cache else None)
    stats = AnalysisStats()

    shallow_paths: Sequence[str] = arguments.paths
    if arguments.changed:
        narrowed = _changed_targets(arguments.paths)
        if narrowed is None:
            print("repro lint: --changed needs git; analyzing "
                  "everything", file=sys.stderr)
        else:
            shallow_paths = narrowed

    findings = analyze_paths(shallow_paths, config,
                             cache=cache, stats=stats)
    if arguments.deep:
        findings.extend(analyze_project(arguments.paths, config,
                                        cache=cache, stats=stats))
        findings.sort(key=lambda f: f.sort_key)
    if arguments.budget:
        findings.extend(budget_findings(stats, config))
    if cache is not None:
        cache.save()

    if arguments.output_format == "json":
        print(render_json(
            findings,
            timings=stats.timing_rows(),
            cache=cache.stats.to_dict() if cache is not None else None))
        return 1 if findings else 0
    if arguments.output_format == "sarif":
        print(render_sarif(findings))
        return 1 if findings else 0

    print(render_text(findings))
    status = 1 if findings else 0

    if not arguments.skip_tools:
        for tool, tool_args in (
            ("ruff", ["check", *arguments.paths]),
            ("mypy", []),  # scope comes from [tool.mypy] files=...
        ):
            code = _run_tool(tool, tool_args)
            if code is None:
                print(f"{tool}: skipped (not installed)")
            elif code != 0:
                status = 1
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
