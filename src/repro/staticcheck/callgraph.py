"""Project-wide call graph over the analyzed modules.

The deep rules need to follow a call like ``self.ledger.audit()`` from
the function that makes it to the function that implements it, across
module boundaries.  This module builds that graph with a deliberately
small amount of type inference:

* ``self.method()`` resolves through the enclosing class (and its
  project-local base classes),
* bare ``f()`` resolves to a module-level function of the same module
  or through the module's import aliases,
* ``self.attr.method()`` (class-attribute dispatch) resolves through
  the attribute's inferred type — from ``self.attr = ClassName(...)``
  constructor assignments, from annotated assignments, and from
  ``self.attr = param`` where the parameter carries a class annotation
  (string forward references included),
* ``local.method()`` resolves the same way for unambiguously typed
  local variables and annotated parameters,
* chained attribute reads type through each hop
  (``sensors = self.engine.sensors`` types the local from
  ``EngineInstance.sensors``), and pre-bound method attributes
  (``self._record = monitor.record_statement``) resolve a later
  ``self._record(...)`` to the real method.

Calls whose receiver cannot be typed produce no edge; calls resolving
to a type outside the analyzed program produce an *external* edge whose
callee is the fully qualified dotted name (``threading.Thread.join``,
``queue.Queue.get``, ``time.sleep``) — exactly what the blocking-call
rule needs to recognise stdlib blocking primitives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.staticcheck.astutil import dotted_segments
from repro.staticcheck.driver import ModuleContext

#: External types whose constructors we recognise on attribute
#: assignments so that methods called on them resolve to dotted names.
_EXTERNAL_CTOR_HEADS = ("threading", "queue", "socket", "subprocess")


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``: everything under the nearest
    ``src`` directory (``src/repro/core/daemon.py`` →
    ``repro.core.daemon``); bare file stem otherwise."""
    parts = list(Path(path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    return ".".join(parts)


@dataclass
class FunctionDecl:
    """One analyzed function or method."""

    qualname: str
    module: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_qualname: str | None = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassDecl:
    """One analyzed class with its inferred attribute types."""

    qualname: str
    name: str
    module: ModuleContext
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)
    """method name -> function qualname."""
    attr_types: dict[str, str] = field(default_factory=dict)
    """``self.<attr>`` -> type (project class qualname or external
    dotted name such as ``threading.Lock``)."""
    bound_methods: dict[str, str] = field(default_factory=dict)
    """``self.<attr>`` -> method qualname, for pre-bound callables
    (``self._record = monitor.record_statement``) so that a later
    ``self._record(...)`` produces a call edge to the real method."""
    bases: tuple[str, ...] = ()
    """Project-resolved base class qualnames."""
    condition_wraps: dict[str, str] = field(default_factory=dict)
    """``self._granted = threading.Condition(self._mutex)`` records
    ``_granted -> _mutex`` so both names denote one lock."""


@dataclass
class CallEdge:
    """One resolved call site."""

    caller: str
    callee: str
    line: int
    column: int
    external: bool
    node: ast.Call

    def describe(self) -> str:
        suffix = " [external]" if self.external else ""
        return f"{self.caller} -> {self.callee}{suffix}"


@dataclass
class ProjectContext:
    """Everything the deep rules know about the analyzed program."""

    modules: dict[str, ModuleContext] = field(default_factory=dict)
    """path -> parsed module."""
    module_names: dict[str, str] = field(default_factory=dict)
    """dotted module name -> path."""
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    classes: dict[str, ClassDecl] = field(default_factory=dict)
    class_by_name: dict[str, list[str]] = field(default_factory=dict)
    """simple class name -> qualnames (for global fallback lookup)."""
    edges: dict[str, list[CallEdge]] = field(default_factory=dict)
    """caller qualname -> its outgoing call edges."""

    def calls_from(self, qualname: str) -> list[CallEdge]:
        return self.edges.get(qualname, [])

    def resolve_method(self, class_qualname: str,
                       method: str) -> str | None:
        """Method lookup on a project class, following project bases."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            decl = self.classes.get(current)
            if decl is None:
                continue
            found = decl.methods.get(method)
            if found is not None:
                return found
            stack.extend(decl.bases)
        return None


def build_project(modules: list[ModuleContext]) -> ProjectContext:
    """Index every module and resolve every call site."""
    project = ProjectContext()
    for module in modules:
        project.modules[module.path] = module
        project.module_names[module_name_for(module.path)] = module.path
    for module in modules:
        _index_module(project, module)
    for module in modules:
        _resolve_class_refs(project, module)
    for decl in project.functions.values():
        project.edges[decl.qualname] = _resolve_calls(project, decl)
    return project


# -- indexing ---------------------------------------------------------------


def _index_module(project: ProjectContext, module: ModuleContext) -> None:
    modname = module_name_for(module.path)
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{modname}.{node.name}"
            project.functions[qualname] = FunctionDecl(
                qualname=qualname, module=module, node=node)
        elif isinstance(node, ast.ClassDef):
            _index_class(project, module, modname, node)


def _index_class(project: ProjectContext, module: ModuleContext,
                 modname: str, node: ast.ClassDef) -> None:
    qualname = f"{modname}.{node.name}"
    decl = ClassDecl(qualname=qualname, name=node.name,
                     module=module, node=node)
    project.classes[qualname] = decl
    project.class_by_name.setdefault(node.name, []).append(qualname)
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_qualname = f"{qualname}.{child.name}"
            decl.methods[child.name] = method_qualname
            project.functions[method_qualname] = FunctionDecl(
                qualname=method_qualname, module=module, node=child,
                class_qualname=qualname)


def _resolve_class_refs(project: ProjectContext,
                        module: ModuleContext) -> None:
    """Second pass: base classes and attribute types, which may point
    at classes of modules indexed after this one."""
    modname = module_name_for(module.path)
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        decl = project.classes[f"{modname}.{node.name}"]
        bases = []
        for base in node.bases:
            resolved = _resolve_type_expr(project, module, base)
            if resolved is not None and resolved in project.classes:
                bases.append(resolved)
        decl.bases = tuple(bases)
        _infer_attr_types(project, module, decl)


def _infer_attr_types(project: ProjectContext, module: ModuleContext,
                      decl: ClassDecl) -> None:
    for method in decl.node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        param_types = _param_types(project, module, method)
        for stmt in ast.walk(method):
            attr: str | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_target(stmt.targets[0])
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                attr = _self_target(stmt.target)
                value = stmt.value
                annotation = stmt.annotation
            if attr is None:
                continue
            inferred = None
            if annotation is not None:
                inferred = _resolve_type_expr(project, module, annotation)
            if inferred is None and value is not None:
                inferred = _infer_expr_type(project, module,
                                            decl, param_types, value)
            if inferred is not None and attr not in decl.attr_types:
                decl.attr_types[attr] = inferred
            if inferred is None and value is not None:
                bound = _bound_method(project, decl, param_types, value)
                if bound is not None:
                    decl.bound_methods.setdefault(attr, bound)
            if value is not None:
                wrapped = _condition_wrapped_attr(module, value)
                if wrapped is not None:
                    decl.condition_wraps.setdefault(attr, wrapped)


def _self_target(target: ast.expr) -> str | None:
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return None


def _condition_wrapped_attr(module: ModuleContext,
                            value: ast.expr) -> str | None:
    """``threading.Condition(self._mutex)`` -> ``_mutex``."""
    if not isinstance(value, ast.Call) or not value.args:
        return None
    segments = dotted_segments(value.func)
    if segments is None:
        return None
    resolved = _external_dotted(module, segments)
    if resolved != "threading.Condition":
        return None
    return _self_target(value.args[0])


def _param_types(project: ProjectContext, module: ModuleContext,
                 func: ast.FunctionDef | ast.AsyncFunctionDef,
                 ) -> dict[str, str]:
    types: dict[str, str] = {}
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is None:
            continue
        resolved = _resolve_type_expr(project, module, arg.annotation)
        if resolved is not None:
            types[arg.arg] = resolved
    return types


# -- type expression resolution ---------------------------------------------


def _resolve_type_expr(project: ProjectContext, module: ModuleContext,
                       annotation: ast.expr) -> str | None:
    """Best-effort class for a type annotation / base-class expression.

    Handles string forward references, ``X | None`` unions (first
    non-None member) and ``Generic[T]`` subscripts."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value,
                                                           str):
        try:
            parsed = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
        return _resolve_type_expr(project, module, parsed)
    if isinstance(annotation, ast.Subscript):
        base = _resolve_type_expr(project, module, annotation.value)
        if base is not None and base.rsplit(".", 1)[-1] == "Optional":
            return _resolve_type_expr(project, module, annotation.slice)
        return base
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op,
                                                        ast.BitOr):
        for side in (annotation.left, annotation.right):
            if isinstance(side, ast.Constant) and side.value is None:
                continue
            resolved = _resolve_type_expr(project, module, side)
            if resolved is not None:
                return resolved
        return None
    segments = dotted_segments(annotation)
    if segments is None:
        return None
    return _resolve_class_name(project, module, segments)


def _resolve_class_name(project: ProjectContext, module: ModuleContext,
                        segments: list[str]) -> str | None:
    """Class qualname (project) or dotted name (external) for a
    ``Name``/``a.b.C`` reference inside ``module``."""
    modname = module_name_for(module.path)
    local = f"{modname}.{segments[-1]}" if len(segments) == 1 else None
    if local is not None and local in project.classes:
        return local
    head = segments[0]
    aliased = module.aliases.get(head)
    if aliased is not None:
        dotted = ".".join([aliased, *segments[1:]])
        if dotted in project.classes:
            return dotted
        # ``import repro.core.x as y`` + ``y.Class``: try module lookup.
        prefix, _, last = dotted.rpartition(".")
        if prefix in project.module_names:
            candidate = f"{prefix}.{last}"
            if candidate in project.classes:
                return candidate
        return dotted  # external type, keep the dotted name
    if len(segments) == 1:
        candidates = project.class_by_name.get(segments[0], [])
        if len(candidates) == 1:
            return candidates[0]
    return None


def _external_dotted(module: ModuleContext,
                     segments: list[str]) -> str | None:
    """Fully qualified external dotted name via import aliases."""
    head = module.aliases.get(segments[0])
    if head is None:
        return None
    return ".".join([head, *segments[1:]])


def _infer_expr_type(project: ProjectContext, module: ModuleContext,
                     decl: ClassDecl | None,
                     param_types: dict[str, str],
                     value: ast.expr) -> str | None:
    """Type of an assigned expression: constructor calls, parameter
    copies and ``self.attr`` reads."""
    if isinstance(value, ast.Call):
        segments = dotted_segments(value.func)
        if segments is None:
            return None
        resolved = _resolve_class_name(project, module, segments)
        if resolved is not None and resolved in project.classes:
            return resolved
        external = _external_dotted(module, segments)
        if external is not None and external.split(".")[0] in \
                _EXTERNAL_CTOR_HEADS:
            return external
        # ``session = self._ensure_session()``: use the method's
        # declared return type.
        if (decl is not None and segments[0] == "self"
                and len(segments) == 2):
            target = project.resolve_method(decl.qualname, segments[1])
            if target is not None:
                returns = project.functions[target].node.returns
                if returns is not None:
                    return _resolve_type_expr(project, module, returns)
        return None
    if isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or):
        # ``clock or SystemClock()``: any disjunct with a known type.
        for operand in value.values:
            inferred = _infer_expr_type(project, module, decl,
                                        param_types, operand)
            if inferred is not None:
                return inferred
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    if isinstance(value, ast.Attribute):
        segments = dotted_segments(value)
        if segments is not None:
            return _chain_type(project, decl, param_types, segments)
    return None


def _attr_type_of(project: ProjectContext, class_qualname: str,
                  attr: str) -> str | None:
    """``attr``'s inferred type on ``class_qualname``, walking
    project-local base classes the same way method resolution does."""
    seen: set[str] = set()
    frontier = [class_qualname]
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.add(current)
        decl = project.classes.get(current)
        if decl is None:
            continue
        inferred = decl.attr_types.get(attr)
        if inferred is not None:
            return inferred
        frontier.extend(decl.bases)
    return None


def _chain_type(project: ProjectContext, decl: ClassDecl | None,
                param_types: dict[str, str],
                segments: list[str]) -> str | None:
    """Type of a dotted read like ``self.engine.sensors`` or
    ``monitor.statements``: resolve the head (``self`` or a typed
    name), then fold each attribute through the owning class'
    inferred attribute types."""
    if not segments:
        return None
    head, *rest = segments
    if head == "self":
        if decl is None:
            return None
        current: str | None = decl.qualname
    else:
        current = param_types.get(head)
    for attr in rest:
        if current is None or current not in project.classes:
            return None
        current = _attr_type_of(project, current, attr)
    return current


def _bound_method(project: ProjectContext, decl: ClassDecl | None,
                  param_types: dict[str, str],
                  value: ast.expr) -> str | None:
    """Method qualname when ``value`` reads a bound method, e.g.
    ``monitor.record_statement`` with ``monitor: IntegratedMonitor``."""
    if not isinstance(value, ast.Attribute):
        return None
    segments = dotted_segments(value)
    if segments is None or len(segments) < 2:
        return None
    owner = _chain_type(project, decl, param_types, segments[:-1])
    if owner is None or owner not in project.classes:
        return None
    return project.resolve_method(owner, segments[-1])


# -- call resolution --------------------------------------------------------


def _local_types(project: ProjectContext, decl: FunctionDecl,
                 class_decl: ClassDecl | None) -> dict[str, str]:
    """Types of parameters and unambiguously assigned locals."""
    types = _param_types(project, decl.module, decl.node)
    ambiguous: set[str] = set()
    for node in ast.walk(decl.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        inferred = _infer_expr_type(project, decl.module, class_decl,
                                    types, node.value)
        existing = types.get(target.id)
        if inferred is None:
            if existing is not None:
                ambiguous.add(target.id)
            continue
        if existing is not None and existing != inferred:
            ambiguous.add(target.id)
        else:
            types[target.id] = inferred
    for name in ambiguous:
        types.pop(name, None)
    return types


def _resolve_calls(project: ProjectContext,
                   decl: FunctionDecl) -> list[CallEdge]:
    module = decl.module
    class_decl = (project.classes.get(decl.class_qualname)
                  if decl.class_qualname else None)
    local_types = _local_types(project, decl, class_decl)
    modname = module_name_for(module.path)
    edges: list[CallEdge] = []
    for node in ast.walk(decl.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = _resolve_one_call(project, module, modname,
                                     class_decl, local_types, node)
        if resolved is None:
            continue
        callee, external = resolved
        edges.append(CallEdge(
            caller=decl.qualname, callee=callee,
            line=node.lineno, column=node.col_offset,
            external=external, node=node))
    return edges


def _resolve_one_call(project: ProjectContext, module: ModuleContext,
                      modname: str, class_decl: ClassDecl | None,
                      local_types: dict[str, str],
                      node: ast.Call) -> tuple[str, bool] | None:
    segments = dotted_segments(node.func)
    if segments is None:
        return None
    head = segments[0]

    if head == "self" and class_decl is not None:
        if len(segments) == 2:
            target = project.resolve_method(class_decl.qualname,
                                            segments[1])
            if target is not None:
                return target, False
            # self._record(...): a pre-bound method attribute.
            bound = _bound_method_of(project, class_decl.qualname,
                                     segments[1])
            if bound is not None:
                return bound, False
            return None
        # self.attr.method(...): dispatch through the attribute's type.
        attr_type = _attr_type_of(project, class_decl.qualname,
                                  segments[1])
        return _dispatch_on_type(project, attr_type, segments[2:])

    if head in local_types and len(segments) >= 2:
        return _dispatch_on_type(project, local_types[head], segments[1:])

    if len(segments) == 1:
        target = f"{modname}.{head}"
        if target in project.functions:
            return target, False
        if target in project.classes:
            ctor = project.resolve_method(target, "__init__")
            return (ctor, False) if ctor is not None else (target, False)
        resolved = _resolve_class_name(project, module, segments)
        if resolved is not None and resolved in project.classes:
            ctor = project.resolve_method(resolved, "__init__")
            return (ctor, False) if ctor is not None else (resolved, False)
        aliased = module.aliases.get(head)
        if aliased is not None:
            if aliased in project.functions:
                return aliased, False
            return aliased, True
        if head == "open":
            return "open", True
        return None

    aliased = module.aliases.get(head)
    if aliased is None:
        return None
    dotted = ".".join([aliased, *segments[1:]])
    if dotted in project.functions:
        return dotted, False
    prefix, _, method = dotted.rpartition(".")
    if prefix in project.classes:
        target = project.resolve_method(prefix, method)
        if target is not None:
            return target, False
    return dotted, True


def _bound_method_of(project: ProjectContext, class_qualname: str,
                     attr: str) -> str | None:
    """Pre-bound method recorded for ``attr``, walking base classes."""
    seen: set[str] = set()
    frontier = [class_qualname]
    while frontier:
        current = frontier.pop(0)
        if current in seen:
            continue
        seen.add(current)
        decl = project.classes.get(current)
        if decl is None:
            continue
        bound = decl.bound_methods.get(attr)
        if bound is not None:
            return bound
        frontier.extend(decl.bases)
    return None


def _dispatch_on_type(project: ProjectContext, receiver_type: str | None,
                      remaining: list[str]) -> tuple[str, bool] | None:
    if receiver_type is None or not remaining:
        return None
    # Fold intermediate attributes (``self.engine.sensors.start(...)``)
    # through the owning classes' inferred attribute types.
    while len(remaining) > 1 and receiver_type in project.classes:
        next_type = _attr_type_of(project, receiver_type, remaining[0])
        if next_type is None:
            return None
        receiver_type = next_type
        remaining = remaining[1:]
    if receiver_type in project.classes:
        target = project.resolve_method(receiver_type, remaining[0])
        if target is not None:
            return target, False
        bound = _bound_method_of(project, receiver_type, remaining[0])
        if bound is not None:
            return bound, False
        return None
    return ".".join([receiver_type, *remaining]), True
