"""Project-specific static analysis for the monitoring core.

The paper's design only works if the hot monitoring path stays correct
and cheap *by construction*: sensors, ring buffers, the storage daemon
and the lock manager all share mutable state across threads, every
timestamp must flow through :mod:`repro.clock`, and no sensor may call
back into the catalog.  ``repro.staticcheck`` is a small Python-``ast``
analysis framework enforcing exactly those invariants:

* **Lock discipline** (``LCK``) — attributes annotated
  ``# staticcheck: shared(<lock>)`` may only be mutated inside a
  ``with self.<lock>:`` block, in ``__init__``, or in a method
  annotated ``# staticcheck: guarded-by(<lock>)``.
* **Clock discipline** (``CLK``) — no ``time.time()`` /
  ``datetime.now()`` style wall-clock calls outside ``clock.py``.
* **Exception discipline** (``EXC``) — no bare ``except`` anywhere; no
  broad ``except Exception`` that swallows errors in daemon, watchdog
  or sensor paths.
* **Sensor-overhead discipline** (``SNS``) — no catalog/engine/session
  calls from inside sensor record paths.

A second, *interprocedural* phase (``--deep``) builds a project-wide
call graph and propagates held locks across it, adding:

* **Lock-order cycles** (``LCK003``) — a cycle in the acquisition-order
  graph is a potential deadlock.
* **Blocking under a lock** (``LCK004``) — sleeps, socket/file I/O, SQL
  round trips or untimed ``queue.get``/``join`` reachable while any
  lock is held.
* **Unbounded growth** (``GRW001``) — monitor-path containers that grow
  without eviction, ``maxlen``, a capacity check or a
  ``# staticcheck: bounded(<witness>)`` declaration.
* **Sensor-call budget** (``SNS002``) — sensor paths looping (directly
  or through calls) over catalog/engine-sized collections.

On top of the call graph and lock flow sits a *field-sensitive
dataflow* layer (:mod:`repro.staticcheck.dataflow`) that infers, from
where locked writes happen, which lock guards each attribute — no
annotation needed — and powers three atomicity rule families:

* **Check-then-act** (``ATM001``) — a guarded field tested without its
  lock (or through a stale snapshot taken under an earlier
  acquisition) and then acted on.
* **Compound updates** (``ATM002``) — ``self.n += 1``-style
  read-modify-write on a guarded attribute outside its lock.
* **Unsafe publication** (``PUB001``) — ``self`` escaping ``__init__``
  (thread start, callback registry, module global) before every
  attribute is assigned.

Deliberate exceptions are waived with
``# staticcheck: atomic(<witness>)`` where the witness names the
evidence of atomicity.

A *performance-discipline* phase (:mod:`repro.staticcheck.hotpath` +
:mod:`repro.staticcheck.rules_perf`) seeds hot roots from
``# staticcheck: hotpath`` annotations on sensor/execute/ring-buffer/
daemon-flush entry points, propagates hotness through the call graph
(``coldpath(<witness>)`` stops propagation into deliberate slow paths)
and polices per-call cost inside every hot function:

* **Per-call allocation** (``PRF001``) — dict/list/set displays,
  comprehensions, lambdas, container/record constructions.
* **Repeated lookups in hot loops** (``PRF002``) — attribute chains
  re-walked per iteration; bind them to locals.
* **Unguarded formatting** (``PRF003``) — f-string/str.format/logging
  work with no level check and off any error path.
* **Per-row clock reads** (``PRF004``) — wall-clock reads that should
  be captured once per statement and reused.
* **Work under an engine lock** (``PRF005``) — allocation/formatting
  inside lockflow's held-lock regions of hot functions.

Irreducible costs are waived with ``# staticcheck:
allocfree(<witness>)``; PRF findings carry hotness provenance (the
``hotpath`` root plus the call chain) in text and JSON (schema v4).

A *thread-ownership* phase (:mod:`repro.staticcheck.ownership` +
:mod:`repro.staticcheck.rules_ownership`) infers thread roles from
``threading.Thread`` construction sites, propagates them breadth-first
through the call graph, joins them with field-sensitive access sites
and classifies every monitored class field as ``exclusive(role)``,
``guarded(lock)``, ``handoff`` or ``shared-unsynchronized``:

* **Cross-thread access** (``OWN001``) — a field reached by several
  thread roles with no common lock held at every site.
* **Thread escape** (``OWN002``) — ``self`` stored into a module
  global outside ``__init__`` with no lock held, publishing
  thread-owned state without a publication point (extends PUB001
  beyond construction).
* **Ownership drift** (``OWN003``) — an ``owned(<role>)`` /
  ``shared(<lock>)`` annotation the inferred map contradicts.

The inferred map is exported as an artifact (``repro lint
--ownership-map``, JSON schema v5) and corroborated at runtime by
:mod:`repro.core.accesswitness` during ``repro chaos --witness``.

An *integer-domain* phase (:mod:`repro.staticcheck.domains` +
:mod:`repro.staticcheck.rules_domains`) types the id-valued ``int``s
the sharded monitor overloads — ``local_seq``, ``encoded_seq``,
persisted ``src_seq``, ``shard_id``, ``shard_index``, ``session_id``
— seeding from known producers (``encode_seq``, ``shard_of_seq``,
``RingBuffer.append``), carrier parameter names and
``# staticcheck: domain(...)`` declarations, and propagating through
calls, returns, tuple unpacking and container element flow:

* **Cross-domain mixing** (``DOM001``) — comparing/combining ints of
  different domains, or ordering encoded seqs without a per-shard
  anchor (the unsound scalar high-water).
* **Local-seq escape** (``DOM002``) — an unencoded value flowing into
  a parameter expecting an encoded ``src_seq``.
* **Missing ``% shard_count``** (``DOM003``) — a per-shard structure
  indexed by a raw session/seq-domain int.
* **Domain drift** (``DOM004``) — a ``domain(...)`` declaration the
  inference contradicts.

Deliberate cross-domain meetings are waived with
``# staticcheck: mixeddomain(<witness>)``; the inferred map is
exported with ``repro lint --domain-map`` (JSON schema v6).

Analysis is *incremental* and *budgeted*: ``--cache`` persists results
under ``.staticcheck-cache/`` keyed by content hash, rule-set version
and call-graph dependency fingerprint so a warm run re-analyzes
nothing; ``--budget`` enforces per-rule wall-time ceilings and emits a
per-rule timing table in the JSON report (schema v3).

Run it as ``python -m repro.cli lint --deep [paths]`` or through
:func:`analyze_paths` / :func:`analyze_project`.  Findings are
suppressable per line with ``# staticcheck: ignore[RULE1,RULE2]``;
deep findings carry an evidence trace (call chain plus acquisition
sites) in both text and JSON output.
"""

from __future__ import annotations

from repro.staticcheck.base import (
    ProjectRule,
    Rule,
    all_deep_rules,
    all_rules,
    register,
    register_deep,
)
from repro.staticcheck.cache import AnalysisCache, CacheStats, git_changed_files
from repro.staticcheck.callgraph import ProjectContext, build_project
from repro.staticcheck.config import StaticcheckConfig, load_config
from repro.staticcheck.dataflow import (
    AttrFlow,
    AttrFlowResult,
    analyze_attr_flows,
    file_dependencies,
)
from repro.staticcheck.driver import (
    AnalysisStats,
    ModuleContext,
    analyze_paths,
    analyze_project,
)
from repro.staticcheck.domains import (
    DomainResult,
    compute_domain_map,
    compute_domains,
    domains_for,
)
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.lockflow import DeepContext, LockFlow
from repro.staticcheck.ownership import (
    OwnershipResult,
    compute_ownership,
    compute_ownership_map,
    ownership_for,
    thread_start_sites,
)
from repro.staticcheck.reporters import (
    parse_json,
    render_json,
    render_sarif,
    render_text,
)

# Importing the rule modules registers their rules with the registry.
from repro.staticcheck import rules_clock  # noqa: F401  (registration)
from repro.staticcheck import rules_exceptions  # noqa: F401
from repro.staticcheck import rules_locks  # noqa: F401
from repro.staticcheck import rules_sensors  # noqa: F401
from repro.staticcheck import rules_deep  # noqa: F401
from repro.staticcheck import rules_atomic  # noqa: F401
from repro.staticcheck import rules_perf  # noqa: F401
from repro.staticcheck import rules_ownership  # noqa: F401
from repro.staticcheck import rules_domains  # noqa: F401

__all__ = [
    "AnalysisCache",
    "AnalysisStats",
    "AttrFlow",
    "AttrFlowResult",
    "CacheStats",
    "DeepContext",
    "DomainResult",
    "Finding",
    "LockFlow",
    "ModuleContext",
    "OwnershipResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "StaticcheckConfig",
    "TraceEntry",
    "all_deep_rules",
    "all_rules",
    "analyze_attr_flows",
    "analyze_paths",
    "analyze_project",
    "build_project",
    "compute_domain_map",
    "compute_domains",
    "compute_ownership",
    "compute_ownership_map",
    "domains_for",
    "file_dependencies",
    "git_changed_files",
    "load_config",
    "ownership_for",
    "parse_json",
    "register",
    "register_deep",
    "render_json",
    "render_sarif",
    "render_text",
    "thread_start_sites",
]
