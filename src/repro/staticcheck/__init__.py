"""Project-specific static analysis for the monitoring core.

The paper's design only works if the hot monitoring path stays correct
and cheap *by construction*: sensors, ring buffers, the storage daemon
and the lock manager all share mutable state across threads, every
timestamp must flow through :mod:`repro.clock`, and no sensor may call
back into the catalog.  ``repro.staticcheck`` is a small Python-``ast``
analysis framework enforcing exactly those invariants:

* **Lock discipline** (``LCK``) — attributes annotated
  ``# staticcheck: shared(<lock>)`` may only be mutated inside a
  ``with self.<lock>:`` block, in ``__init__``, or in a method
  annotated ``# staticcheck: guarded-by(<lock>)``.
* **Clock discipline** (``CLK``) — no ``time.time()`` /
  ``datetime.now()`` style wall-clock calls outside ``clock.py``.
* **Exception discipline** (``EXC``) — no bare ``except`` anywhere; no
  broad ``except Exception`` that swallows errors in daemon, watchdog
  or sensor paths.
* **Sensor-overhead discipline** (``SNS``) — no catalog/engine/session
  calls from inside sensor record paths.

A second, *interprocedural* phase (``--deep``) builds a project-wide
call graph and propagates held locks across it, adding:

* **Lock-order cycles** (``LCK003``) — a cycle in the acquisition-order
  graph is a potential deadlock.
* **Blocking under a lock** (``LCK004``) — sleeps, socket/file I/O, SQL
  round trips or untimed ``queue.get``/``join`` reachable while any
  lock is held.
* **Unbounded growth** (``GRW001``) — monitor-path containers that grow
  without eviction, ``maxlen``, a capacity check or a
  ``# staticcheck: bounded(<witness>)`` declaration.
* **Sensor-call budget** (``SNS002``) — sensor paths looping (directly
  or through calls) over catalog/engine-sized collections.

Run it as ``python -m repro.cli lint --deep [paths]`` or through
:func:`analyze_paths` / :func:`analyze_project`.  Findings are
suppressable per line with ``# staticcheck: ignore[RULE1,RULE2]``;
deep findings carry an evidence trace (call chain plus acquisition
sites) in both text and JSON output.
"""

from __future__ import annotations

from repro.staticcheck.base import (
    ProjectRule,
    Rule,
    all_deep_rules,
    all_rules,
    register,
    register_deep,
)
from repro.staticcheck.callgraph import ProjectContext, build_project
from repro.staticcheck.config import StaticcheckConfig, load_config
from repro.staticcheck.driver import (
    ModuleContext,
    analyze_paths,
    analyze_project,
)
from repro.staticcheck.findings import Finding, Severity, TraceEntry
from repro.staticcheck.lockflow import DeepContext, LockFlow
from repro.staticcheck.reporters import parse_json, render_json, render_text

# Importing the rule modules registers their rules with the registry.
from repro.staticcheck import rules_clock  # noqa: F401  (registration)
from repro.staticcheck import rules_exceptions  # noqa: F401
from repro.staticcheck import rules_locks  # noqa: F401
from repro.staticcheck import rules_sensors  # noqa: F401
from repro.staticcheck import rules_deep  # noqa: F401

__all__ = [
    "DeepContext",
    "Finding",
    "LockFlow",
    "ModuleContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "StaticcheckConfig",
    "TraceEntry",
    "all_deep_rules",
    "all_rules",
    "analyze_paths",
    "analyze_project",
    "build_project",
    "load_config",
    "parse_json",
    "register",
    "register_deep",
    "render_json",
    "render_text",
]
