"""Project-specific static analysis for the monitoring core.

The paper's design only works if the hot monitoring path stays correct
and cheap *by construction*: sensors, ring buffers, the storage daemon
and the lock manager all share mutable state across threads, every
timestamp must flow through :mod:`repro.clock`, and no sensor may call
back into the catalog.  ``repro.staticcheck`` is a small Python-``ast``
analysis framework enforcing exactly those invariants:

* **Lock discipline** (``LCK``) — attributes annotated
  ``# staticcheck: shared(<lock>)`` may only be mutated inside a
  ``with self.<lock>:`` block, in ``__init__``, or in a method
  annotated ``# staticcheck: guarded-by(<lock>)``.
* **Clock discipline** (``CLK``) — no ``time.time()`` /
  ``datetime.now()`` style wall-clock calls outside ``clock.py``.
* **Exception discipline** (``EXC``) — no bare ``except`` anywhere; no
  broad ``except Exception`` that swallows errors in daemon, watchdog
  or sensor paths.
* **Sensor-overhead discipline** (``SNS``) — no catalog/engine/session
  calls from inside sensor record paths.

Run it as ``python -m repro.cli lint [paths]`` or through
:func:`analyze_paths`.  Findings are suppressable per line with
``# staticcheck: ignore[RULE1,RULE2]``.
"""

from __future__ import annotations

from repro.staticcheck.base import Rule, all_rules, register
from repro.staticcheck.config import StaticcheckConfig, load_config
from repro.staticcheck.driver import ModuleContext, analyze_paths
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.reporters import parse_json, render_json, render_text

# Importing the rule modules registers their rules with the registry.
from repro.staticcheck import rules_clock  # noqa: F401  (registration)
from repro.staticcheck import rules_exceptions  # noqa: F401
from repro.staticcheck import rules_locks  # noqa: F401
from repro.staticcheck import rules_sensors  # noqa: F401

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "StaticcheckConfig",
    "all_rules",
    "analyze_paths",
    "load_config",
    "parse_json",
    "register",
    "render_json",
    "render_text",
]
