"""Convenience factories for the paper's experimental setups.

Section V uses three Ingres instances: *Original* (no monitoring code),
*Monitoring* (sensors compiled in) and *Daemon* (monitoring plus the
storage daemon).  These helpers build the equivalent configurations so
examples, tests and benchmarks share one definition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock
from repro.config import DaemonConfig, EngineConfig
from repro.core.daemon import StorageDaemon
from repro.core.ima import register_ima_tables
from repro.core.lockwitness import LockWitness
from repro.core.monitor import IntegratedMonitor, MonitorSensors
from repro.core.sensors import NullSensors
from repro.core.sharding import ShardedMonitor, ShardedMonitorSensors
from repro.core.workload_db import WorkloadDatabase
from repro.engine.engine import EngineInstance


@dataclass
class Setup:
    """One engine configuration plus its monitoring attachments."""

    name: str
    engine: EngineInstance
    monitor: IntegratedMonitor | ShardedMonitor | None = None
    workload_db: WorkloadDatabase | None = None
    daemon: StorageDaemon | None = None


def original_setup(config: EngineConfig | None = None,
                   clock: Clock | None = None) -> Setup:
    """The untouched instance: sensor call sites dispatch to no-ops."""
    engine = EngineInstance(config, sensors=NullSensors(), clock=clock)
    return Setup(name="original", engine=engine)


def monitoring_setup(config: EngineConfig | None = None,
                     clock: Clock | None = None,
                     lock_witness: LockWitness | None = None) -> Setup:
    """Monitoring code "compiled in": integrated sensors, no daemon.

    ``MonitorConfig.shard_count`` picks the monitor flavor: 1 (the
    paper's default) builds the single :class:`IntegratedMonitor`;
    above 1 builds a :class:`~repro.core.sharding.ShardedMonitor` whose
    sensors route each session to its ``session_id % shard_count``
    shard."""
    engine = EngineInstance(config, clock=clock, lock_witness=lock_witness)
    monitor: IntegratedMonitor | ShardedMonitor
    if engine.config.monitor.shard_count > 1:
        monitor = ShardedMonitor(engine.config.monitor, engine.clock)
        engine.sensors = ShardedMonitorSensors(monitor)
    else:
        monitor = IntegratedMonitor(engine.config.monitor, engine.clock)
        engine.sensors = MonitorSensors(monitor)
    return Setup(name="monitoring", engine=engine, monitor=monitor)


def daemon_setup(database_name: str,
                 config: EngineConfig | None = None,
                 clock: Clock | None = None,
                 daemon_config: DaemonConfig | None = None,
                 lock_witness: LockWitness | None = None) -> Setup:
    """Monitoring plus the storage daemon persisting to a workload DB.

    The engine and the named database are created, IMA virtual tables
    are registered in it, and a daemon is wired up (not started — call
    ``setup.daemon.start()`` or drive ``poll_once`` manually).  With a
    ``lock_witness`` every engine/daemon lock is wrapped so the run
    produces runtime lock-order evidence (see
    :mod:`repro.core.lockwitness`)."""
    setup = monitoring_setup(config, clock, lock_witness=lock_witness)
    engine = setup.engine
    database = engine.create_database(database_name)
    assert setup.monitor is not None
    register_ima_tables(database, setup.monitor)
    workload_db = WorkloadDatabase(engine.config, engine.clock)
    daemon = StorageDaemon(engine, database_name, workload_db,
                           daemon_config or engine.config.daemon,
                           witness=lock_witness,
                           shard_count=setup.monitor.shard_count)
    setup.name = "daemon"
    setup.workload_db = workload_db
    setup.daemon = daemon
    return setup
