"""Convenience factories for the paper's experimental setups.

Section V uses three Ingres instances: *Original* (no monitoring code),
*Monitoring* (sensors compiled in) and *Daemon* (monitoring plus the
storage daemon).  These helpers build the equivalent configurations so
examples, tests and benchmarks share one definition.

The daemon setup also wires the overload-resilience subsystem
(:mod:`repro.core.overload`): an :class:`OverloadController` attached
to the daemon (fed after every poll) plus health-surface registrations
on the engine, so ``engine.health()`` reports the daemon, the ladder
and — once :func:`attach_supervisor` is called — the thread
supervisor.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.clock import Clock
from repro.config import DaemonConfig, EngineConfig
from repro.core.daemon import StorageDaemon
from repro.core.health import Supervisor
from repro.core.ima import register_ima_tables
from repro.core.lockwitness import LockWitness
from repro.core.monitor import IntegratedMonitor, MonitorSensors
from repro.core.overload import OverloadController
from repro.core.sensors import NullSensors
from repro.core.sharding import ShardedMonitor, ShardedMonitorSensors
from repro.core.workload_db import WorkloadDatabase
from repro.engine.engine import EngineInstance


@dataclass
class Setup:
    """One engine configuration plus its monitoring attachments."""

    name: str
    engine: EngineInstance
    monitor: IntegratedMonitor | ShardedMonitor | None = None
    workload_db: WorkloadDatabase | None = None
    daemon: StorageDaemon | None = None
    controller: OverloadController | None = None
    supervisor: Supervisor | None = None


def original_setup(config: EngineConfig | None = None,
                   clock: Clock | None = None) -> Setup:
    """The untouched instance: sensor call sites dispatch to no-ops."""
    engine = EngineInstance(config, sensors=NullSensors(), clock=clock)
    return Setup(name="original", engine=engine)


def monitoring_setup(config: EngineConfig | None = None,
                     clock: Clock | None = None,
                     lock_witness: LockWitness | None = None) -> Setup:
    """Monitoring code "compiled in": integrated sensors, no daemon.

    ``MonitorConfig.shard_count`` picks the monitor flavor: 1 (the
    paper's default) builds the single :class:`IntegratedMonitor`;
    above 1 builds a :class:`~repro.core.sharding.ShardedMonitor` whose
    sensors route each session to its ``session_id % shard_count``
    shard."""
    engine = EngineInstance(config, clock=clock, lock_witness=lock_witness)
    monitor: IntegratedMonitor | ShardedMonitor
    if engine.config.monitor.shard_count > 1:
        monitor = ShardedMonitor(engine.config.monitor, engine.clock)
        engine.sensors = ShardedMonitorSensors(monitor)
    else:
        monitor = IntegratedMonitor(engine.config.monitor, engine.clock)
        engine.sensors = MonitorSensors(monitor)
    return Setup(name="monitoring", engine=engine, monitor=monitor)


def daemon_setup(database_name: str,
                 config: EngineConfig | None = None,
                 clock: Clock | None = None,
                 daemon_config: DaemonConfig | None = None,
                 lock_witness: LockWitness | None = None) -> Setup:
    """Monitoring plus the storage daemon persisting to a workload DB.

    The engine and the named database are created, IMA virtual tables
    are registered in it, and a daemon is wired up (not started — call
    ``setup.daemon.start()`` or drive ``poll_once`` manually).  With a
    ``lock_witness`` every engine/daemon lock is wrapped so the run
    produces runtime lock-order evidence (see
    :mod:`repro.core.lockwitness`).

    When ``MonitorConfig.overload.enabled`` (the default) an
    :class:`OverloadController` is attached to the daemon and both are
    registered on the engine's health surface."""
    setup = monitoring_setup(config, clock, lock_witness=lock_witness)
    engine = setup.engine
    database = engine.create_database(database_name)
    assert setup.monitor is not None
    register_ima_tables(database, setup.monitor)
    workload_db = WorkloadDatabase(engine.config, engine.clock)
    daemon = StorageDaemon(engine, database_name, workload_db,
                           daemon_config or engine.config.daemon,
                           witness=lock_witness,
                           shard_count=setup.monitor.shard_count)
    setup.name = "daemon"
    setup.workload_db = workload_db
    setup.daemon = daemon
    engine.register_health_source(
        "daemon", lambda: _daemon_health(daemon))
    if engine.config.monitor.overload.enabled:
        controller = OverloadController(setup.monitor,
                                        engine.config.monitor.overload,
                                        engine.clock)
        daemon.attach_controller(controller)
        setup.controller = controller
        engine.register_health_source("overload", controller.snapshot)
    return setup


def attach_supervisor(setup: Setup,
                      tuner: "object | None" = None) -> Supervisor:
    """Build a :class:`Supervisor` watching the setup's daemon (and
    optionally an :class:`~repro.core.autopilot.AutonomousTuner`),
    registered on the engine health surface.  Not started — call
    ``supervisor.start()`` or drive ``tick()`` manually."""
    engine = setup.engine
    supervisor = Supervisor(engine.config.supervisor, engine.clock)
    daemon = setup.daemon
    if daemon is not None:
        supervisor.watch("storage-daemon", daemon.is_alive,
                         daemon.last_heartbeat, daemon.restart)
    if tuner is not None:
        supervisor.watch(
            "autonomous-tuner",
            tuner.is_alive,  # type: ignore[attr-defined]
            tuner.last_heartbeat,  # type: ignore[attr-defined]
            tuner.restart)  # type: ignore[attr-defined]
    setup.supervisor = supervisor
    engine.register_health_source("supervisor", supervisor.snapshot)
    return supervisor


def _daemon_health(daemon: StorageDaemon) -> dict[str, object]:
    """The daemon's status dataclass as a JSON-shaped dict."""
    status = asdict(daemon.status())
    status["parked_groups"] = list(status["parked_groups"])
    return status
