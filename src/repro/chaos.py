"""Chaos-soak harness: seeded crash/recovery torture for the tuning loop.

The storage daemon's recovery tests prove single scenarios; this module
proves the *composition*: a workload keeps running while faults are
injected at randomized seams (``ddl.apply``, ``journal.write``,
``analyzer.scan``, ``session.execute``, ``workload_db.append``) and the
autonomous tuner is repeatedly "killed" — abandoned mid-state and
rebuilt from what the workload database persisted, exactly like a
process restart.  After every round the harness re-checks the
system-wide invariants:

* **no half-applied cycle** — after recovery no journal entry is left
  in ``intent`` state, and recovery replay is idempotent (a second
  pass resolves nothing);
* **journal/schema agreement** — an index exists if and only if some
  journal entry for it is ``applied``;
* **exactly-once changes** — no statement has more than one ``applied``
  journal entry, and no workload table persisted a duplicate source
  sequence number;
* **always recoverable** — a freshly constructed tuner over the same
  workload DB can always run recovery to a clean state.

Everything is deterministic per seed: one :class:`random.Random` drives
the workload mix, the fault schedule and the crash points, and time is
a :class:`~repro.clock.VirtualClock`.  CI runs several seeds
(``repro chaos --seed N``); a failure reproduces locally from the seed
alone.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import threading
from dataclasses import dataclass, field

from repro import faultsim
from repro.clock import VirtualClock
from repro.config import (
    DaemonConfig,
    EngineConfig,
    MonitorConfig,
    OverloadConfig,
)
from repro.core.accesswitness import (
    AccessWitness,
    cross_check_access,
    static_ownership_map,
)
from repro.core.autopilot import AutonomousTuner, TuningPolicy
from repro.core.daemon import StorageDaemon
from repro.core.lockwitness import (
    LockWitness,
    cross_check,
    static_order_edges,
)
from repro.core.overload import (
    DETAILED,
    LEVEL_NAMES,
    conservation_violations,
)
from repro.core.sharding import monitor_shards
from repro.core.tuning_journal import JournalState, TuningJournal
from repro.core.workload_db import TABLE_SOURCES
from repro.errors import ReproError
from repro.setups import Setup, daemon_setup
from repro.workloads import NrefScale, complex_query_set, load_nref


class ChaosInvariantError(ReproError):
    """A soak invariant did not hold — a real bug, never flake."""


CHAOS_FAULT_POINTS = (
    "ddl.apply", "journal.write", "analyzer.scan",
    "session.execute", "workload_db.append",
)


@dataclass(frozen=True)
class SoakConfig:
    """One soak run; everything derives from ``seed``."""

    seed: int = 1
    rounds: int = 12
    proteins: int = 300
    queries_per_round: int = 5
    fault_probability: float = 0.6
    """Chance a round arms a random fault before the tuning cycle."""
    crash_probability: float = 0.5
    """Chance a round kills the tuner after its cycle (the abandoned
    object's memory dies; the next round rebuilds from the journal)."""
    quarantine_cooldown_s: float = 240.0
    round_interval_s: float = 120.0
    """Virtual seconds between rounds (lets cooldowns expire mid-soak)."""
    shard_count: int = 2
    """Monitor shards: > 1 soaks the sharded monitor's merged IMA view
    and the daemon's per-shard high-water vectors under the same
    crash/recovery torture the plain monitor gets."""

    storm: bool = False
    """Overload storm: tiny workload rings, a fast degradation ladder,
    two parallel poll workers, and per-round storm faults
    (``monitor.ring_flood``, ``daemon.poll_worker.die``) on top of the
    regular fault schedule.  Every round then asserts the conservation
    invariant exactly, and the soak ends with a recovery phase that
    must return every shard to DETAILED with no poll group parked."""


@dataclass
class SoakReport:
    """What one seeded soak run did and survived."""

    seed: int
    rounds: int = 0
    cycles_failed: int = 0
    faults_armed: list[str] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    """Interrupted journal entries resolved across all rounds."""
    applied: int = 0
    quarantined: int = 0
    invariant_sweeps: int = 0
    conservation_sweeps: int = 0
    """Per-round exact conservation checks passed (storm mode)."""
    storm_poll_failures: int = 0
    """Daemon polls the storm faults made fail."""
    peak_level: int = 0
    """Deepest ladder level any shard reached (storm mode)."""
    health: dict | None = field(default=None, compare=False)
    """Final engine health snapshot (``--health-report`` artifact).

    Excluded from equality: it carries real-time signals (poll-latency
    EWMAs measured with ``perf_counter``) that vary run to run even
    under identical seeds, while the soak *outcome* stays deterministic.
    """

    def describe(self) -> str:
        base = (f"chaos soak (seed {self.seed}): {self.rounds} rounds, "
                f"{self.cycles_failed} failed cycles, "
                f"{len(self.faults_armed)} faults armed, "
                f"{self.crashes} crashes, "
                f"{self.recoveries} interrupted changes recovered, "
                f"{self.applied} changes applied, "
                f"{self.quarantined} quarantine decisions, "
                f"{self.invariant_sweeps} invariant sweeps — all held")
        if self.conservation_sweeps:
            base += (f" — storm: peak {LEVEL_NAMES[self.peak_level]}, "
                     f"{self.storm_poll_failures} failed polls, "
                     f"{self.conservation_sweeps} exact conservation "
                     "sweeps, recovered to DETAILED")
        return base


def _require(condition: bool, message: str, seed: int) -> None:
    if not condition:
        raise ChaosInvariantError(f"[seed {seed}] {message}")


def check_invariants(setup: Setup, journal: TuningJournal,
                     seed: int) -> None:
    """Assert every soak invariant; raises :class:`ChaosInvariantError`.

    Callers must run with all faults disarmed and recovery already
    replayed — these are the *steady-state* guarantees.
    """
    workload_db = setup.workload_db
    assert workload_db is not None
    database = setup.engine.database("nref")

    _require(not journal.interrupted(),
             "journal still holds interrupted entries after recovery",
             seed)

    applied_by_sql: dict[str, int] = {}
    for entry in journal.entries():
        if entry.state is JournalState.APPLIED:
            applied_by_sql[entry.sql] = applied_by_sql.get(entry.sql, 0) + 1
    for sql, count in applied_by_sql.items():
        _require(count == 1,
                 f"{count} applied journal entries for {sql!r}", seed)

    # Journal/schema agreement for index creations (both directions:
    # every applied index exists, every other outcome left none behind
    # unless a later entry re-applied the same statement).
    index_entries: dict[str, bool] = {}
    for entry in journal.entries():
        if entry.kind == "create index":
            index_entries[entry.object_name] = (
                index_entries.get(entry.object_name, False)
                or entry.state is JournalState.APPLIED)
    for index_name, should_exist in index_entries.items():
        exists = database.catalog.has_index(index_name)
        _require(exists == should_exist,
                 f"index {index_name!r}: schema says "
                 f"{'present' if exists else 'absent'}, journal says "
                 f"{'applied' if should_exist else 'not applied'}", seed)

    # The daemon's exactly-once guarantee must survive the chaos too.
    for wl_table in TABLE_SOURCES:
        storage = workload_db.database.storage_for(wl_table)
        seqs = [row[-1] for _rowid, row in storage.scan()]
        _require(len(seqs) == len(set(seqs)),
                 f"{wl_table} persisted duplicate source rows", seed)


def _fresh_tuner(setup: Setup, policy: TuningPolicy,
                 ) -> tuple[AutonomousTuner, TuningJournal]:
    """A tuner as a restarted process would build it: nothing carried
    over in memory, journal and breakers reloaded from persisted rows."""
    workload_db = setup.workload_db
    assert workload_db is not None
    journal = TuningJournal(workload_db.database, setup.engine.clock)
    tuner = AutonomousTuner(setup.engine, "nref", workload_db,
                            daemon=setup.daemon, policy=policy,
                            journal=journal)
    return tuner, journal


def _fault_for_round(rng: random.Random, round_no: int,
                     config: SoakConfig) -> str | None:
    """Pick this round's fault spec (or None).

    Round 0 always faults the first journal *mark* (``after=1`` skips
    the intent write), leaving a dangling ``intent`` entry with the
    change in the schema — the exact half-applied window the undo SQL
    exists for — so every seed exercises rollback recovery.  Later
    rounds draw from a schedule weighted toward the crash-window seams
    (``journal.write``, ``ddl.apply``); ``ddl.apply`` sometimes fails
    *every* change in the cycle, which builds the consecutive-failure
    streaks the circuit breakers quarantine on.
    """
    if round_no == 0:
        return "journal.write:once,after=1"
    if rng.random() >= config.fault_probability:
        return None
    point = rng.choices(CHAOS_FAULT_POINTS,
                        weights=(30, 30, 10, 15, 15))[0]
    if point == "ddl.apply" and rng.random() < 0.5:
        return "ddl.apply:every-n,n=1"  # the whole cycle's changes fail
    return f"{point}:once,after={rng.randint(0, 4)}"


def _storm_fault_for_round(rng: random.Random, round_no: int) -> str | None:
    """Pick this round's storm fault.

    Round 0 always floods (``monitor.ring_flood`` forces every shard's
    pressure to 1.0, so the ladder provably escalates on every seed);
    rounds 1–2 always kill every poll worker (two consecutive failed
    polls park both groups, forcing their shards to SHED).  Later
    rounds draw randomly so parks and floods overlap the regular
    crash/recovery chaos differently per seed.

    ``daemon.poll_worker.hang`` is deliberately absent: its latency
    action sleeps on the soak's :class:`~repro.clock.VirtualClock`,
    which does not block, so only the real-clock storm
    (``repro drive --storm``) exercises the heartbeat-deadline path.
    """
    if round_no == 0:
        return "monitor.ring_flood:every-n=1"
    if round_no in (1, 2):
        return "daemon.poll_worker.die:every-n=1"
    if rng.random() < 0.5:
        return rng.choice(("daemon.poll_worker.die:once",
                           "daemon.poll_worker.die:every-n=1",
                           "monitor.ring_flood:once"))
    return None


def _storm_poll(daemon: StorageDaemon) -> BaseException | None:
    """One daemon poll from a thread carrying the daemon's role (see
    :func:`_daemon_probe`), returning the failure instead of raising —
    storm rounds *expect* injected worker deaths."""
    box: list[BaseException] = []

    def target() -> None:
        try:
            daemon.poll_once()
        except (ReproError, OSError) as error:
            box.append(error)

    probe = threading.Thread(target=target, name="repro-storage-daemon")
    probe.start()
    probe.join()
    return box[0] if box else None


def _storm_recovery(setup: Setup, report: SoakReport,
                    config: SoakConfig) -> None:
    """Post-storm quiesce: with all faults disarmed, advancing time and
    polling must unpark every group (half-open success) and walk every
    shard back to DETAILED — and the conservation ledger must balance.

    Raises :class:`ChaosInvariantError` if recovery does not complete
    within the hysteresis window, a degraded window is left open, the
    storm never actually degraded anything, or conservation broke.
    """
    daemon, controller = setup.daemon, setup.controller
    assert daemon is not None and controller is not None
    clock = setup.engine.clock
    assert isinstance(clock, VirtualClock)
    faultsim.reset()
    recovered = False
    # 3 rungs x recover_dwell 2 plus park-cooldown expiry and half-open
    # retries fit comfortably in 40 polls; failing to converge by then
    # is a stuck ladder, not slowness.
    for _ in range(40):
        clock.advance(60.0)
        if _storm_poll(daemon) is not None:
            continue
        if (not daemon.parked_shards()
                and set(controller.levels()) == {DETAILED}):
            recovered = True
            break
    levels = [LEVEL_NAMES[level] for level in controller.levels()]
    _require(recovered,
             "storm recovery: shards did not return to DETAILED within "
             f"the hysteresis window (levels {levels}, parked "
             f"{sorted(daemon.parked_shards())})", config.seed)
    windows = controller.degraded_windows()
    _require(all(window["ended_at"] is not None for window in windows),
             "storm recovery: degraded window left open", config.seed)
    report.peak_level = max(
        (window["peak_level"] for window in windows), default=DETAILED)
    _require(report.peak_level > DETAILED,
             "storm soak never degraded any shard — not a storm",
             config.seed)
    assert setup.monitor is not None
    for violation in conservation_violations(setup.monitor):
        _require(False, f"conservation: {violation}", config.seed)


def _probe_poll(daemon: StorageDaemon) -> None:
    """Thread target for the witnessed daemon probe: one poll cycle,
    exactly the code path ``StorageDaemon._run`` executes per tick."""
    daemon.poll_once()


def _daemon_probe(daemon: StorageDaemon) -> None:
    """Drive one daemon poll from a thread carrying the daemon's role.

    The soak cannot start ``daemon.start()`` (its run loop waits on a
    real ``Event`` while time is virtual), so a short-lived thread —
    named after the daemon role so the access witness attributes its
    accesses correctly — executes one poll and is joined immediately,
    keeping the soak deterministic while giving the witness genuine
    cross-thread interleaving over the daemon's guarded state."""
    probe = threading.Thread(target=_probe_poll, args=(daemon,),
                             name="repro-storage-daemon")
    probe.start()
    probe.join()


def run_soak(config: SoakConfig,
             witness: LockWitness | None = None,
             access_witness: AccessWitness | None = None,
             ownership_map: dict | None = None) -> SoakReport:
    """One seeded soak; returns the report or raises on a violation.

    With a ``witness`` every engine/daemon lock is wrapped, so the soak
    doubles as a runtime probe of the static lock-order model — the
    caller cross-checks ``witness.observed_edges()`` afterwards.  With
    an ``access_witness`` (plus the static ``ownership_map`` naming the
    fields to track), daemon/monitor/tuner state is instrumented and
    every round drives one daemon poll from a thread carrying the
    daemon's role, so the caller can cross-check per-thread field
    accesses against the ownership model the OWN rules inferred."""
    faultsim.reset()
    rng = random.Random(config.seed)
    clock = VirtualClock(1_000_000.0)
    scale = NrefScale(proteins=config.proteins)
    if config.storm:
        # Tiny rings + dwell-1 escalation make the ladder move within a
        # 12-round soak; two poll workers give the park machinery two
        # groups to quarantine; the 180 s park cooldown spans ~1.5
        # rounds so parks heal (half-open) while the soak still runs.
        engine_config = EngineConfig(
            monitor=MonitorConfig(
                shard_count=config.shard_count,
                workload_buffer_size=128,
                overload=OverloadConfig(sample_k=4, escalate_dwell=1,
                                        recover_dwell=2)),
            daemon=DaemonConfig(poll_workers=2, flush_every_polls=1,
                                worker_park_after=2,
                                worker_park_cooldown_s=180.0))
    else:
        engine_config = EngineConfig(
            monitor=MonitorConfig(shard_count=config.shard_count))
    setup = daemon_setup("nref", config=engine_config, clock=clock,
                         lock_witness=witness)
    load_nref(setup.engine.database("nref"), scale, main_pages=2)
    queries = complex_query_set(scale, count=30, seed=config.seed)
    policy = TuningPolicy(
        max_changes_per_cycle=4,
        quarantine_cooldown_s=config.quarantine_cooldown_s,
    )
    report = SoakReport(seed=config.seed)
    tuner, journal = _fresh_tuner(setup, policy)
    if access_witness is not None and ownership_map is not None:
        if setup.daemon is not None:
            access_witness.instrument_mapped(setup.daemon, ownership_map)
        if setup.monitor is not None:
            # A sharded monitor is instrumented shard by shard: the
            # facade itself is immutable after construction; the
            # guarded state the ownership model talks about lives in
            # the per-shard IntegratedMonitor instances.
            for shard in monitor_shards(setup.monitor):
                access_witness.instrument_mapped(shard, ownership_map)
        access_witness.instrument_mapped(tuner, ownership_map)
    session = setup.engine.connect("nref")
    try:
        for _round in range(config.rounds):
            clock.advance(config.round_interval_s)
            for _ in range(config.queries_per_round):
                session.execute(rng.choice(queries))

            spec = _fault_for_round(rng, _round, config)
            if spec is not None:
                faultsim.arm_from_spec(spec, clock=clock)
                report.faults_armed.append(spec)
            if config.storm:
                storm_spec = _storm_fault_for_round(rng, _round)
                if storm_spec is not None:
                    faultsim.arm_from_spec(storm_spec, clock=clock)
                    report.faults_armed.append(storm_spec)
            try:
                cycle = tuner.run_cycle()
            except (ReproError, OSError):
                report.cycles_failed += 1
            else:
                report.recoveries += len(cycle.recovered)
                report.applied += cycle.applied_count
                report.quarantined += len(cycle.quarantined)
            if config.storm and setup.daemon is not None:
                # Poll with the storm fault still armed: worker deaths
                # land here, feeding the park machinery and (through
                # note_poll) the degradation ladder.
                if _storm_poll(setup.daemon) is not None:
                    report.storm_poll_failures += 1
            faultsim.reset()

            if access_witness is not None and setup.daemon is not None:
                # Faults are disarmed here, so the extra poll cannot
                # change what the next round's cycle observes beyond
                # what a scheduled daemon tick would.
                _daemon_probe(setup.daemon)

            if rng.random() < config.crash_probability:
                # Kill the tuner: its breakers, history and journal
                # mirror die here; only persisted state survives.
                tuner, journal = _fresh_tuner(setup, policy)
                if access_witness is not None and ownership_map is not None:
                    access_witness.instrument_mapped(tuner, ownership_map)
                report.crashes += 1

            report.recoveries += len(tuner.recover())
            _require(tuner.recover() == [],
                     "recovery replay was not idempotent", config.seed)
            check_invariants(setup, journal, config.seed)
            report.invariant_sweeps += 1
            if config.storm:
                # The soak is single-threaded between rounds, so the
                # conservation ledger must balance bit-exactly here —
                # under every ladder state the round put shards in.
                assert setup.monitor is not None
                for violation in conservation_violations(setup.monitor):
                    _require(False, f"conservation: {violation}",
                             config.seed)
                report.conservation_sweeps += 1
            report.rounds += 1
        if config.storm:
            _storm_recovery(setup, report, config)
        report.health = setup.engine.health()
    finally:
        session.close()
        faultsim.reset()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="seeded crash/recovery soak for the autonomous "
                    "tuning loop (exit 0 only if every invariant held)")
    parser.add_argument("--seed", action="append", type=int, default=[],
                        metavar="N",
                        help="soak seed (repeatable; default: 1 2 3)")
    parser.add_argument("--rounds", type=int, default=12,
                        help="rounds per seed (default: 12)")
    parser.add_argument("--proteins", type=int, default=300,
                        help="NREF scale (default: 300)")
    parser.add_argument("--shards", type=int, default=2,
                        help="monitor shard count (default: 2; 1 soaks "
                             "the unsharded monitor)")
    parser.add_argument("--witness", action="store_true",
                        help="wrap engine/daemon locks in the runtime "
                             "lock witness, instrument daemon/monitor/"
                             "tuner fields in the access witness, and "
                             "cross-check observed acquisition order "
                             "and per-thread field access against the "
                             "static LCK003 and OWN001-OWN003 models "
                             "(fails on contradictions)")
    parser.add_argument("--witness-report", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="write the witness report (stats, observed "
                             "edges, field accesses, cross-checks) as "
                             "JSON to PATH; implies --witness")
    parser.add_argument("--storm", action="store_true",
                        help="overload storm: tiny rings, fast ladder, "
                             "poll-worker deaths and ring floods on top "
                             "of the regular chaos; every round asserts "
                             "exact conservation and the soak must end "
                             "with every shard back at DETAILED")
    parser.add_argument("--health-report", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="write each seed's final engine health "
                             "snapshot (ladder, daemon, conservation "
                             "ledger) as JSON to PATH")
    arguments = parser.parse_args(argv)
    seeds = arguments.seed or [1, 2, 3]
    witness = None
    access_witness = None
    ownership_map = None
    if arguments.witness or arguments.witness_report is not None:
        witness = LockWitness()
        access_witness = AccessWitness()
        ownership_map = static_ownership_map()
    healths: dict[str, dict | None] = {}
    for seed in seeds:
        config = SoakConfig(seed=seed, rounds=arguments.rounds,
                            proteins=arguments.proteins,
                            shard_count=arguments.shards,
                            storm=arguments.storm)
        try:
            report = run_soak(config, witness=witness,
                              access_witness=access_witness,
                              ownership_map=ownership_map)
        except ChaosInvariantError as error:
            print(f"INVARIANT VIOLATION: {error}", file=sys.stderr)
            return 1
        healths[f"seed-{seed}"] = report.health
        print(report.describe())
    if arguments.health_report is not None:
        arguments.health_report.write_text(
            json.dumps(healths, indent=2, default=str) + "\n")
    if witness is not None:
        checked = cross_check(witness.observed_edges(),
                              static_order_edges())
        payload = witness.report()
        payload["cross_check"] = checked.to_json()
        assert access_witness is not None and ownership_map is not None
        access_checked = cross_check_access(access_witness.observed(),
                                            ownership_map)
        payload["access_witness"] = access_witness.report()
        payload["access_cross_check"] = access_checked.to_json()
        if arguments.witness_report is not None:
            arguments.witness_report.write_text(
                json.dumps(payload, indent=2) + "\n")
        edge_count = len(payload["order_edges"])
        print(f"lock witness: {len(payload['tokens'])} locks, "
              f"{edge_count} observed order edges, "
              f"{len(checked.unmodeled)} unmodeled by the static graph")
        access_tokens = payload["access_witness"]["tokens"]
        print(f"access witness: {len(access_tokens)} fields observed, "
              f"{len(access_checked.downgrade_candidates)} waiver-"
              f"downgrade candidates, "
              f"{len(access_checked.unmapped)} unmapped")
        for candidate in access_checked.downgrade_candidates:
            print(f"downgrade candidate: {candidate}")
        for contradiction in checked.contradictions:
            print(f"LOCK-ORDER CONTRADICTION: {contradiction}",
                  file=sys.stderr)
        for contradiction in access_checked.contradictions:
            print(f"OWNERSHIP CONTRADICTION: {contradiction}",
                  file=sys.stderr)
        if not checked.ok or not access_checked.ok:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
