"""Clock abstraction used throughout the engine and monitor.

Two implementations are provided:

* :class:`SystemClock` — wraps :func:`time.monotonic` /
  :func:`time.time`; used by default and by the wall-clock experiments.
* :class:`VirtualClock` — a manually advanced clock; used by tests and
  by simulations (e.g. the lock-diagram workload) that need
  deterministic timestamps.

The engine measures *durations* with :meth:`Clock.monotonic` and stamps
*records* with :meth:`Clock.now` (epoch seconds), mirroring the paper's
split between per-statement wallclock and workload-DB timestamps.

Both clocks route ``now()`` through the :mod:`repro.faultsim`
``clock.now`` failure point, which can inject wall-clock *jumps* (an
NTP step, a VM migration).  ``monotonic()`` is deliberately immune —
that is the property monotonic time guarantees — so jump experiments
expose exactly the code that stamps records with wall-clock time.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro import faultsim


class Clock(ABC):
    """Interface for time sources."""

    @abstractmethod
    def now(self) -> float:
        """Return the current wall-clock time in epoch seconds."""

    @abstractmethod
    def monotonic(self) -> float:
        """Return a monotonically increasing reading in seconds."""

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds``; virtual clocks advance instead."""
        time.sleep(seconds)


class SystemClock(Clock):
    """Real time, backed by the :mod:`time` module."""

    def now(self) -> float:
        return time.time() + faultsim.clock_offset(self)

    def monotonic(self) -> float:
        return time.monotonic()


class VirtualClock(Clock):
    """Deterministic clock advanced explicitly by the caller.

    ``now`` and ``monotonic`` share a single reading so tests can reason
    about both durations and timestamps.  ``sleep`` advances the clock
    instead of blocking, which lets daemon/retention tests run instantly.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._time = float(start)

    def now(self) -> float:
        return self._time + faultsim.clock_offset(self)

    def monotonic(self) -> float:
        return self._time

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot move a clock backwards: {seconds}")
        self._time += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)
