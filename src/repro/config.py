"""Configuration objects for the engine and the monitoring subsystem.

All tunables live here so that experiments can express their setups as
plain dataclass instances.  The defaults mirror the paper where it gives
concrete values (1000-statement ring buffers, 30 s daemon interval,
7-day workload-DB retention) and otherwise use values appropriate for a
laptop-scale simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StorageConfig:
    """Tunables for the simulated storage engine."""

    page_size: int = 4096
    """Bytes per page; rows are packed into slotted pages of this size."""

    buffer_pool_pages: int = 256
    """Number of pages the LRU buffer cache can hold."""

    heap_fill_factor: float = 0.9
    """Fraction of a heap main page filled before spilling to overflow."""

    btree_order: int = 64
    """Maximum number of keys per B-Tree node."""

    read_latency_s: float = 0.0
    """Optional simulated latency charged per physical page read."""

    write_latency_s: float = 0.0
    """Optional simulated latency charged per physical page write."""


@dataclass(frozen=True)
class CostModelConfig:
    """Weights of the optimizer cost model (requirement ii of the paper:
    all what-if decisions use the engine's own model)."""

    io_page_cost: float = 4.0
    """Cost units charged per page read from disk."""

    cpu_tuple_cost: float = 0.01
    """Cost units charged per tuple processed by an operator."""

    cpu_operator_cost: float = 0.0025
    """Cost units charged per predicate/expression evaluation."""

    cpu_index_tuple_cost: float = 0.005
    """Cost units charged per index entry touched."""

    sort_page_cost: float = 2.0
    """Cost units charged per page of an external sort pass."""

    default_selectivity_eq: float = 0.005
    """Equality selectivity assumed when no histogram exists."""

    default_selectivity_range: float = 0.33
    """Range selectivity assumed when no histogram exists."""


@dataclass(frozen=True)
class LockConfig:
    """Lock manager tunables."""

    wait_timeout_s: float = 10.0
    """Seconds a lock request may wait before raising LockTimeoutError."""

    deadlock_check_interval_s: float = 0.05
    """How often waiting requests re-run deadlock detection."""


@dataclass(frozen=True)
class OverloadConfig:
    """Tunables of the adaptive degradation ladder (:mod:`repro.core.
    overload`): how shard pressure is measured and when a shard's
    monitoring detail escalates or de-escalates."""

    enabled: bool = True
    """Whether setups attach an :class:`~repro.core.overload.
    OverloadController`.  The admission gate in the monitor is always
    compiled in (its counters feed the health surface either way);
    without a controller every shard simply stays DETAILED."""

    sample_k: int = 8
    """In the SAMPLED state one workload record in ``sample_k`` is
    admitted with full detail; the rest are counted as sampled out."""

    escalate_pressure: float = 0.75
    """A shard whose pressure reaches this level for
    ``escalate_dwell`` consecutive observations degrades one rung."""

    deescalate_pressure: float = 0.35
    """A shard whose pressure stays at or below this level for
    ``recover_dwell`` consecutive observations recovers one rung.
    Pressures between the two thresholds are the hysteresis dead band:
    they reset both streaks, so each transition requires *consecutive*
    observations beyond its threshold."""

    escalate_dwell: int = 2
    """Consecutive high-pressure observations before degrading."""

    recover_dwell: int = 3
    """Consecutive low-pressure observations before recovering (higher
    than ``escalate_dwell`` so a recovering shard does not flap)."""

    poll_latency_budget_s: float = 5.0
    """Daemon poll duration treated as pressure 1.0; the EWMA of poll
    durations is normalized against this budget."""

    ewma_alpha: float = 0.3
    """Smoothing factor of the poll-latency EWMA."""

    occupancy_weight: float = 0.3
    """Weight of raw ring occupancy in the pressure signal.  Rings are
    never drained by reads, so a full ring is normal under healthy
    traffic — occupancy alone must not cross ``escalate_pressure``
    (and at the default weight a full ring contributes 0.3, below the
    de-escalation threshold, so recovery is always reachable)."""

    window_history: int = 64
    """Degraded-window annotations kept per controller (oldest out)."""


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the integrated monitor (section IV-A of the paper)."""

    statement_buffer_size: int = 1000
    """Ring-buffer capacity for distinct statements (paper default)."""

    workload_buffer_size: int = 4000
    """Ring-buffer capacity for workload (execution history) entries."""

    reference_buffer_size: int = 8000
    """Ring-buffer capacity for statement→object reference entries."""

    statistics_buffer_size: int = 2000
    """Ring-buffer capacity for system-wide statistics samples."""

    plan_capture_min_cost: float = 100.0
    """Capture the optimizer's plan text for statements whose estimated
    cost reaches this value (AWR-style top-query plans); 0 disables."""

    plan_buffer_size: int = 200
    """Ring-buffer capacity for captured plans."""

    max_statement_text: int = 1024
    """Captured query texts are truncated to this many characters (the
    statement hash still covers the full text)."""

    statement_cache_enabled: bool = True
    """Cache per-statement-hash reference extraction so repeated texts
    skip re-logging catalog references (the caching strategy the paper's
    section V-A proposes to reduce the 1m-test overhead)."""

    shard_count: int = 1
    """Number of monitor shards.  1 (the default) keeps the paper's
    single :class:`~repro.core.monitor.IntegratedMonitor`; above 1 the
    monitor is a :class:`~repro.core.sharding.ShardedMonitor` — sessions
    hash to per-shard ring buffers with independent locks, merged into
    one IMA view.  Capped at
    :data:`~repro.core.sharding.SHARD_STRIDE` (64)."""

    overload: OverloadConfig = field(default_factory=OverloadConfig)
    """Degradation-ladder tunables (see :class:`OverloadConfig`)."""


@dataclass(frozen=True)
class DaemonConfig:
    """Tunables of the storage daemon (section IV-B of the paper)."""

    poll_interval_s: float = 30.0
    """Seconds between IMA polls (paper default: 30 s)."""

    flush_every_polls: int = 4
    """Polls buffered in memory before appending to the workload DB,
    modelling the paper's 'disk accesses every few minutes'."""

    retention_s: float = 7 * 24 * 3600.0
    """Seconds of history kept in the workload DB (paper: seven days)."""

    backoff_initial_s: float = 1.0
    """Extra delay before the retry after the first consecutive poll
    failure; doubles (``backoff_factor``) on each further failure."""

    backoff_factor: float = 2.0
    """Multiplier applied to the backoff delay per consecutive failure."""

    backoff_max_s: float = 300.0
    """Cap on the backoff delay so a long outage still retries."""

    max_pending_rows: int = 100_000
    """Per-table cap on rows buffered while the workload DB is down;
    beyond it the oldest buffered rows are dropped (and counted)."""

    stop_join_timeout_s: float = 5.0
    """Seconds ``stop()`` waits for the poll thread before reporting a
    hung daemon (the thread handle is kept so it cannot be leaked)."""

    poll_workers: int = 1
    """Worker threads a poll fans monitor shards across (each worker
    reads its shards over its own session).  1 polls inline; the whole
    poll is still serialized under the daemon's poll mutex, so workers
    parallelize shard reads *within* one poll, never across polls."""

    worker_heartbeat_timeout_s: float = 10.0
    """Seconds a poll worker may run without stamping its heartbeat
    before the collecting poll declares it hung, abandons its thread
    and fails the round (the worker's session is replaced, never closed
    under the zombie, and the incident is surfaced in the daemon
    status)."""

    worker_park_after: int = 3
    """Consecutive failed rounds for one shard group before that group
    is parked — skipped by subsequent polls so the remaining groups
    keep flowing — until ``worker_park_cooldown_s`` elapses."""

    worker_park_cooldown_s: float = 60.0
    """Seconds a parked shard group stays quarantined before the next
    poll half-opens it (retries it once; success unparks, failure
    re-parks for another cooldown)."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the thread supervisor (:mod:`repro.core.health`)
    that watches the storage daemon and the tuner thread."""

    check_interval_s: float = 5.0
    """Seconds between supervisor ticks when it runs its own thread."""

    heartbeat_timeout_s: float = 30.0
    """Seconds a watched thread may go without stamping its heartbeat
    before the supervisor declares it hung and restarts it."""

    restart_backoff_initial_s: float = 1.0
    """Delay before the first restart of a failed watch; doubles
    (``restart_backoff_factor``) on each consecutive restart."""

    restart_backoff_factor: float = 2.0
    """Multiplier applied to the restart delay per consecutive restart."""

    restart_backoff_max_s: float = 60.0
    """Cap on the restart backoff delay."""

    park_after_restarts: int = 3
    """Consecutive restarts (without an intervening healthy tick)
    before a watch is parked — left alone until ``park_cooldown_s``
    elapses, then retried half-open (the PR-5 circuit-breaker shape)."""

    park_cooldown_s: float = 120.0
    """Seconds a parked watch stays quarantined before one retry."""

    stop_join_timeout_s: float = 5.0
    """Seconds ``stop()`` waits for the supervisor thread itself."""


@dataclass(frozen=True)
class EngineConfig:
    """Top-level configuration for one engine instance."""

    storage: StorageConfig = field(default_factory=StorageConfig)
    cost_model: CostModelConfig = field(default_factory=CostModelConfig)
    locks: LockConfig = field(default_factory=LockConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    daemon: DaemonConfig = field(default_factory=DaemonConfig)
    supervisor: SupervisorConfig = field(default_factory=SupervisorConfig)

    join_dp_threshold: int = 6
    """Use dynamic-programming join enumeration up to this many inputs;
    fall back to a greedy heuristic beyond it."""

    plan_cache_size: int = 256
    """Per-session cache of compiled SELECT plans keyed by statement
    text (the engine-side caching that makes the paper's repeated 1m
    statements cheap).  0 disables plan caching."""

    faults: tuple[str, ...] = ()
    """Fault-injection specs armed when the engine is constructed, e.g.
    ``("disk.read:every-n=10", "session.execute:p=0.01,seed=7")``; see
    :mod:`repro.faultsim`.  Empty (the default) injects nothing."""
