"""Deterministic fault injection for the monitoring pipeline.

The paper's contract for the storage daemon is "always on and never in
the way": a failed poll must not lose or duplicate history, and the
monitor must degrade gracefully rather than hurt the engine.  Proving
that needs failures on demand.  This module provides *named failure
points* wired into the pipeline's seams:

========================  ====================================================
``disk.read``             simulated-disk page read (`storage/disk.py`)
``disk.write``            simulated-disk page write (`storage/disk.py`)
``session.execute``       SQL statement execution (`engine/session.py`)
``clock.now``             wall-clock reads — jump injection (`clock.py`)
``workload_db.append``    workload-DB batch append (`core/workload_db.py`)
``workload_db.purge``     workload-DB retention purge (`core/workload_db.py`)
``ddl.apply``             autonomous DDL implementation
                          (`core/analyzer/recommendations.py`)
``analyzer.scan``         analyzer workload scan (`core/analyzer/analyzer.py`)
``journal.write``         tuning-journal append (`core/tuning_journal.py`)
``daemon.poll_worker.hang``  daemon poll worker stall — arm with
                          ``latency`` (sleeps past the heartbeat
                          deadline) or an ``on_fire`` event hook
                          (`core/daemon.py`)
``daemon.poll_worker.die``   daemon poll worker death — raises inside
                          the worker loop (`core/daemon.py`)
``monitor.ring_flood``    overload-controller pressure override — an
                          armed trigger forces every shard's pressure
                          to 1.0 for that observation
                          (`core/overload.py`)
========================  ====================================================

A point is *armed* with a trigger mode — ``once``, ``every-n``,
``for-duration`` or seeded ``probability`` — plus an action: raise the
seam's natural error (default), inject a latency spike
(``latency_s``), or jump the wall clock (``jump_s``, meaningful for
``clock.now`` only).  Every evaluation and trigger is counted and the
counters stay queryable after disarming (``stats()``, ``\\fault
status`` in the shell, ``--fault`` on the CLI).

Unarmed, the seams cost one module call plus one attribute read
(``_active`` fast path), so the hooks can stay compiled in — the same
design argument the paper makes for its sensors.

Determinism: ``once``/``every-n`` count evaluations, ``for-duration``
uses the caller's :class:`~repro.clock.Clock` (virtual clocks make the
window exact), and ``probability`` draws from a ``random.Random``
seeded at arm time, so a scenario replays identically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import FaultError, InjectedFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.clock import Clock

FAIL_POINTS = (
    "disk.read",
    "disk.write",
    "session.execute",
    "clock.now",
    "workload_db.append",
    "workload_db.purge",
    "ddl.apply",
    "analyzer.scan",
    "journal.write",
    "daemon.poll_worker.hang",
    "daemon.poll_worker.die",
    "monitor.ring_flood",
)

MODES = ("once", "every-n", "for-duration", "probability")


@dataclass(frozen=True)
class FaultStats:
    """Queryable per-point counters (survive disarm/re-arm)."""

    point: str
    armed: str | None
    """Description of the current arming, or None when disarmed."""
    evaluations: int
    """How many times the seam asked "should I fail?"."""
    triggers: int
    """How many evaluations answered "yes"."""
    errors_raised: int
    latency_injected_s: float
    jumps_injected_s: float


class _Spec:
    """One armed failure point (mutable trigger state)."""

    def __init__(self, point: str, mode: str, *, n: int, duration_s: float,
                 probability: float, seed: int, latency_s: float,
                 jump_s: float, after: int, clock: "Clock | None",
                 on_fire: Callable[[str], None] | None) -> None:
        self.point = point
        self.mode = mode
        self.n = n
        self.duration_s = duration_s
        self.probability = probability
        self.latency_s = latency_s
        self.jump_s = jump_s
        self.after = after
        self.clock = clock
        self.on_fire = on_fire
        self.rng = random.Random(seed)
        self.calls = 0
        self.armed_at: float | None = (
            clock.monotonic() if clock is not None else None)

    def describe(self) -> str:
        parts = [self.mode]
        if self.mode == "every-n":
            parts.append(f"n={self.n}")
        elif self.mode == "for-duration":
            parts.append(f"duration={self.duration_s:g}s")
        elif self.mode == "probability":
            parts.append(f"p={self.probability:g}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.latency_s:
            parts.append(f"latency={self.latency_s:g}s")
        if self.jump_s:
            parts.append(f"jump={self.jump_s:g}s")
        return ",".join(parts)


class _Counters:
    """Mutable counter cell behind :class:`FaultStats`."""

    __slots__ = ("evaluations", "triggers", "errors", "latency_s", "jumps_s")

    def __init__(self) -> None:
        self.evaluations = 0
        self.triggers = 0
        self.errors = 0
        self.latency_s = 0.0
        self.jumps_s = 0.0


class FaultInjector:
    """Holds armed failure points and evaluates them at the seams.

    One process-global instance (:func:`get_injector`) backs the wired
    seams; independent instances can be constructed for unit tests.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Key space bounded by FAIL_POINTS (arm() validates names).
        self._points: dict[str, _Spec] = {}
        self._counters: dict[str, _Counters] = {}
        self._clock_offset = 0.0
        # Fast-path flag read without the lock by fire()/clock_offset();
        # a torn read only delays (or wastes) one evaluation.
        self._active = False

    # -- arming ------------------------------------------------------------

    def arm(self, point: str, mode: str = "once", *, n: int = 1,
            duration_s: float = 0.0, probability: float = 0.0,
            seed: int = 0, latency_s: float = 0.0, jump_s: float = 0.0,
            after: int = 0, clock: "Clock | None" = None,
            on_fire: Callable[[str], None] | None = None) -> None:
        """Arm ``point``; replaces any previous arming of that point.

        ``after`` skips the first ``after`` evaluations regardless of
        mode (e.g. "fail the second append").  ``on_fire`` is a
        test-only hook invoked on every trigger *instead of* raising —
        it runs outside the injector lock so it may block on events.
        """
        if point not in FAIL_POINTS:
            raise FaultError(
                f"unknown failure point {point!r}; known points: "
                f"{', '.join(FAIL_POINTS)}")
        if mode not in MODES:
            raise FaultError(
                f"unknown fault mode {mode!r}; known modes: "
                f"{', '.join(MODES)}")
        if mode == "every-n" and n < 1:
            raise FaultError(f"every-n requires n >= 1, got {n}")
        if mode == "for-duration":
            if duration_s <= 0:
                raise FaultError("for-duration requires duration_s > 0")
            if clock is None:
                raise FaultError("for-duration requires a clock to "
                                 "measure the window against")
        if mode == "probability" and not 0.0 < probability <= 1.0:
            raise FaultError(
                f"probability must be in (0, 1], got {probability}")
        spec = _Spec(point, mode, n=n, duration_s=duration_s,
                     probability=probability, seed=seed,
                     latency_s=latency_s, jump_s=jump_s, after=after,
                     clock=clock, on_fire=on_fire)
        with self._lock:
            self._points[point] = spec
            self._counters.setdefault(point, _Counters())
            self._refresh_active()

    def disarm(self, point: str) -> None:
        """Disarm ``point``; counters are kept, clock offset persists."""
        with self._lock:
            self._points.pop(point, None)
            self._refresh_active()

    def reset(self) -> None:
        """Disarm everything, zero the clock offset and all counters."""
        with self._lock:
            self._points.clear()
            self._counters.clear()
            self._clock_offset = 0.0
            self._refresh_active()

    def _refresh_active(self) -> None:  # staticcheck: guarded-by(_lock)
        self._active = bool(self._points) or self._clock_offset != 0.0

    # -- introspection -----------------------------------------------------

    @property
    def active(self) -> bool:
        return self._active

    def armed_points(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._points))

    def stats(self, point: str | None = None) -> tuple[FaultStats, ...]:
        """Counters for ``point`` (or every point ever armed)."""
        with self._lock:
            names = ([point] if point is not None
                     else sorted(self._counters))
            out = []
            for name in names:
                cell = self._counters.get(name, _Counters())
                spec = self._points.get(name)
                out.append(FaultStats(
                    point=name,
                    armed=spec.describe() if spec is not None else None,
                    evaluations=cell.evaluations,
                    triggers=cell.triggers,
                    errors_raised=cell.errors,
                    latency_injected_s=cell.latency_s,
                    jumps_injected_s=cell.jumps_s,
                ))
            return tuple(out)

    # -- evaluation at the seams -------------------------------------------

    def fire(self, point: str, error: type[Exception] = InjectedFault,
             clock: "Clock | None" = None) -> None:
        """Evaluate ``point``: no-op, latency spike, or raised ``error``.

        Called by the wired seams on every operation; the unarmed fast
        path is a single attribute read.
        """
        if not self._active:
            return
        trigger_no = 0
        with self._lock:
            spec = self._points.get(point)
            if spec is None or not self._evaluate(spec, clock):
                return
            cell = self._counters[point]
            latency = spec.latency_s
            callback = spec.on_fire
            if callback is not None:
                pass  # the hook replaces the error action
            elif latency > 0:
                cell.latency_s += latency
            else:
                cell.errors += 1
                trigger_no = cell.triggers
        # Act outside the lock: callbacks may block on events and the
        # latency sleep must never stall other seams (LCK004 discipline).
        if callback is not None:
            callback(point)
            return
        if latency > 0:
            sleeper = clock if clock is not None else spec.clock
            if sleeper is not None:
                sleeper.sleep(latency)
            return
        raise error(
            f"injected fault at {point} (trigger #{trigger_no})")

    def clock_offset(self, clock: "Clock | None" = None) -> float:
        """Current injected wall-clock offset; evaluates ``clock.now``.

        Jump triggers *accumulate* into the offset, which persists until
        :meth:`reset` — once a clock has jumped it stays jumped, like a
        real wall-clock step.  Never sleeps and never raises.
        """
        if not self._active:
            return 0.0
        with self._lock:
            spec = self._points.get("clock.now")
            if spec is not None and self._evaluate(spec, clock):
                self._clock_offset += spec.jump_s
                self._counters["clock.now"].jumps_s += spec.jump_s
                self._refresh_active()
            return self._clock_offset

    # staticcheck: guarded-by(_lock)
    def _evaluate(self, spec: _Spec, clock: "Clock | None") -> bool:
        """One evaluation of an armed point; True when it triggers."""
        cell = self._counters[spec.point]
        cell.evaluations += 1
        spec.calls += 1
        if spec.calls <= spec.after:
            return False
        triggered = False
        if spec.mode == "once":
            triggered = True
            self._points.pop(spec.point, None)
            self._refresh_active()
        elif spec.mode == "every-n":
            triggered = (spec.calls - spec.after) % spec.n == 0
        elif spec.mode == "for-duration":
            timer = clock if clock is not None else spec.clock
            assert spec.armed_at is not None and timer is not None
            if timer.monotonic() - spec.armed_at > spec.duration_s:
                self._points.pop(spec.point, None)
                self._refresh_active()
            else:
                triggered = True
        elif spec.mode == "probability":
            triggered = spec.rng.random() < spec.probability
        if triggered:
            cell.triggers += 1
        return triggered


# -- spec-string arming (config + CLI) -------------------------------------

def parse_spec(spec: str) -> tuple[str, str, dict[str, float]]:
    """Parse ``"point:mode[,key=value...]"`` into arm() arguments.

    Examples: ``disk.read:once``, ``session.execute:every-n=3``,
    ``disk.write:for-duration=5``, ``session.execute:p=0.2,
    seed=42,latency=0.05``, ``clock.now:once,jump=3600``
    (``p`` is shorthand for ``probability``).
    """
    point, sep, rest = spec.partition(":")
    if not sep or not rest:
        raise FaultError(
            f"bad fault spec {spec!r}; expected 'point:mode[,key=value...]'")
    options: dict[str, float] = {}
    mode = ""
    for index, part in enumerate(rest.split(",")):
        key, eq, value = part.strip().partition("=")
        if index == 0:
            mode = _MODE_ALIASES.get(key, key)
            if eq:  # shorthand: every-n=3, for-duration=5, p=.2
                options[_MODE_VALUE_KEY.get(mode, mode)] = float(value)
            continue
        if key not in _OPTION_KEYS:
            raise FaultError(
                f"unknown fault option {key!r} in {spec!r}; known: "
                f"{', '.join(sorted(_OPTION_KEYS))}")
        if not eq:
            raise FaultError(f"fault option {key!r} needs a value")
        options[key] = float(value)
    return point, mode, options


_MODE_ALIASES = {"p": "probability"}
_MODE_VALUE_KEY = {
    "every-n": "n",
    "for-duration": "duration",
    "probability": "probability",
}
_OPTION_KEYS = frozenset(
    {"n", "duration", "probability", "seed", "latency", "jump", "after"})


def arm_from_spec(spec: str, clock: "Clock | None" = None,
                  injector: FaultInjector | None = None) -> None:
    """Arm a failure point from its string spec (config/CLI entry)."""
    target = injector if injector is not None else _default
    point, mode, options = parse_spec(spec)
    target.arm(
        point, mode,
        n=int(options.get("n", 1)),
        duration_s=options.get("duration", 0.0),
        probability=options.get("probability", 0.0),
        seed=int(options.get("seed", 0)),
        latency_s=options.get("latency", 0.0),
        jump_s=options.get("jump", 0.0),
        after=int(options.get("after", 0)),
        clock=clock,
    )


# -- the process-global injector behind the wired seams ---------------------

_default = FaultInjector()


def get_injector() -> FaultInjector:
    """The process-global injector the pipeline seams evaluate."""
    return _default


def fire(point: str, error: type[Exception] = InjectedFault,
         clock: "Clock | None" = None) -> None:
    """Module-level seam hook; see :meth:`FaultInjector.fire`."""
    if not _default._active:
        return
    _default.fire(point, error, clock)


def clock_offset(clock: "Clock | None" = None) -> float:
    """Module-level seam hook; see :meth:`FaultInjector.clock_offset`."""
    if not _default._active:
        return 0.0
    return _default.clock_offset(clock)


def reset() -> None:
    """Reset the process-global injector (test isolation helper)."""
    _default.reset()
