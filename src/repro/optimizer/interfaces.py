"""Snapshot structures the optimizer reads from the engine.

The engine (``repro.engine.database``) builds these from live catalog
and storage state; the optimizer never touches storage directly, which
is also what makes *virtual* indexes possible — a virtual
:class:`IndexInfo` is synthesized from table statistics instead of a
physical B-Tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.catalog.schema import DataType, IndexDef, StorageStructure, TableSchema
from repro.catalog.statistics import TableStatistics

_DEFAULT_WIDTHS = {
    DataType.INT: 8,
    DataType.FLOAT: 8,
    DataType.BOOL: 1,
}


def estimate_row_bytes(schema: TableSchema) -> float:
    """Rough serialized row width from the schema alone."""
    width = (len(schema.columns) + 7) // 8
    for column in schema.columns:
        if column.data_type in _DEFAULT_WIDTHS:
            width += _DEFAULT_WIDTHS[column.data_type]
        elif column.data_type is DataType.VARCHAR:
            width += 2 + max(1, column.max_length // 2)
        else:  # TEXT
            width += 2 + 32
    return float(width)


@dataclass(frozen=True)
class TableInfo:
    """Physical snapshot of one table for costing."""

    name: str
    schema: TableSchema
    structure: StorageStructure
    row_count: int
    page_count: int
    overflow_pages: int
    btree_height: int = 0
    btree_leaf_pages: int = 0
    key_columns: tuple[str, ...] = ()
    hash_chain_pages: float = 0.0
    """HASH structures: average pages per bucket chain (lookup cost)."""
    statistics: TableStatistics | None = None
    avg_row_bytes: float = 64.0

    @property
    def fetch_height(self) -> float:
        """Page accesses per single-row fetch by locator."""
        if self.structure is StorageStructure.BTREE:
            return float(max(1, self.btree_height))
        return 1.0

    @property
    def lookup_pages(self) -> float:
        """Page accesses per keyed lookup through the primary structure."""
        if self.structure is StorageStructure.BTREE:
            return float(max(1, self.btree_height))
        if self.structure is StorageStructure.HASH:
            return max(1.0, self.hash_chain_pages)
        return float(max(1, self.page_count))


@dataclass(frozen=True)
class IndexInfo:
    """Physical (or, for virtual indexes, synthesized) index geometry."""

    definition: IndexDef
    height: int
    leaf_pages: int
    entry_count: int

    @property
    def is_virtual(self) -> bool:
        return self.definition.virtual


def synthesize_index_info(definition: IndexDef, table: TableInfo,
                          page_size: int = 4096) -> IndexInfo:
    """Estimate the geometry a hypothetical index would have.

    Used for virtual (what-if) indexes: entry width is the key columns'
    widths plus an 8-byte locator; the height assumes the same fanout a
    real B-Tree of that entry size would get.
    """
    key_width = 8.0 + sum(
        _DEFAULT_WIDTHS.get(table.schema.column(c).data_type,
                            2 + max(1, table.schema.column(c).max_length // 2
                                    if table.schema.column(c).data_type
                                    is DataType.VARCHAR else 34))
        for c in definition.column_names
    )
    usable = page_size * 0.9
    entries_per_leaf = max(2.0, usable / (key_width + 8.0))
    leaf_pages = max(1, math.ceil(table.row_count / entries_per_leaf))
    fanout = max(2.0, usable / (key_width + 8.0))
    height = max(1, math.ceil(math.log(max(2, leaf_pages), fanout)) + 1)
    return IndexInfo(
        definition=definition,
        height=height,
        leaf_pages=leaf_pages,
        entry_count=table.row_count,
    )


class CatalogView(Protocol):
    """What the optimizer needs to see of the engine."""

    def table_info(self, name: str) -> TableInfo: ...

    def indexes_on(self, table_name: str,
                   include_virtual: bool = False) -> tuple[IndexInfo, ...]: ...
