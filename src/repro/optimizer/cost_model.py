"""The engine's internal cost model.

Costs split into an I/O component (page accesses, weighted by
``io_page_cost``) and a CPU component (tuples and predicate
evaluations).  The executor reports *actual* costs in the same units —
logical page accesses and tuples processed — so estimated and actual
costs are directly comparable, which is what the analyzer's
cost-divergence rule needs.

Heap overflow pages are charged double: chained overflow I/O is random
rather than sequential, which is also why the analyzer's overflow rule
pays off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import CostModelConfig

OVERFLOW_PENALTY = 2.0


@dataclass(frozen=True)
class Cost:
    """An (io, cpu) cost pair in abstract cost units."""

    io: float = 0.0
    cpu: float = 0.0

    @property
    def total(self) -> float:
        return self.io + self.cpu

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.io + other.io, self.cpu + other.cpu)

    def scaled(self, factor: float) -> "Cost":
        return Cost(self.io * factor, self.cpu * factor)


class CostModel:
    """Cost formulas used by the optimizer (and by what-if analysis)."""

    def __init__(self, config: CostModelConfig | None = None) -> None:
        self.config = config or CostModelConfig()

    # -- scans -------------------------------------------------------------

    def seq_scan(self, pages: float, overflow_pages: float,
                 rows: float) -> Cost:
        """Full scan: every page once, overflow pages at the random-I/O
        penalty, one CPU charge per row."""
        io = (pages - overflow_pages) + overflow_pages * OVERFLOW_PENALTY
        return Cost(
            io=io * self.config.io_page_cost,
            cpu=rows * self.config.cpu_tuple_cost,
        )

    def btree_descent(self, height: float) -> Cost:
        """Root-to-leaf traversal."""
        return Cost(io=max(1.0, height) * self.config.io_page_cost)

    def btree_range_scan(self, height: float, leaf_pages: float,
                         selectivity: float, rows: float) -> Cost:
        """Descend once, then walk the qualifying fraction of the leaves."""
        touched_leaves = max(1.0, math.ceil(leaf_pages * selectivity))
        out_rows = rows * selectivity
        return self.btree_descent(height) + Cost(
            io=touched_leaves * self.config.io_page_cost,
            cpu=out_rows * self.config.cpu_tuple_cost,
        )

    def index_scan(self, index_height: float, index_leaf_pages: float,
                   selectivity: float, table_rows: float,
                   fetch_height: float) -> Cost:
        """Probe a secondary index, then fetch each matching base row.

        ``fetch_height`` is the page accesses needed per base-row fetch
        (1 for a heap TID fetch, tree height for a B-Tree table).
        """
        matches = table_rows * selectivity
        index_cost = self.btree_range_scan(
            index_height, index_leaf_pages, selectivity, table_rows
        )
        fetch_io = matches * max(1.0, fetch_height)
        return index_cost + Cost(
            io=fetch_io * self.config.io_page_cost,
            cpu=matches * self.config.cpu_index_tuple_cost,
        )

    def hash_lookup(self, chain_pages: float, matches: float) -> Cost:
        """Equality probe into a HASH structure: read one bucket chain."""
        return Cost(
            io=max(1.0, chain_pages) * self.config.io_page_cost,
            cpu=matches * self.config.cpu_tuple_cost,
        )

    # -- joins --------------------------------------------------------------

    def nested_loop_join(self, outer_rows: float, inner_rows: float,
                         inner_cost: Cost) -> Cost:
        """Inner side is materialized once, then rescanned from memory."""
        comparisons = outer_rows * inner_rows
        return inner_cost + Cost(
            cpu=comparisons * self.config.cpu_operator_cost
        )

    def hash_join(self, build_rows: float, probe_rows: float) -> Cost:
        """Build + probe CPU; both inputs' scan costs are charged by the
        children themselves."""
        return Cost(
            cpu=(build_rows + probe_rows) * self.config.cpu_tuple_cost
        )

    def index_lookup_join(self, outer_rows: float, lookup_height: float,
                          matches_per_probe: float,
                          fetch_height: float) -> Cost:
        """One keyed descent per outer row plus base-row fetches."""
        probe_io = outer_rows * max(1.0, lookup_height)
        fetch_io = outer_rows * matches_per_probe * max(0.0, fetch_height)
        return Cost(
            io=(probe_io + fetch_io) * self.config.io_page_cost,
            cpu=outer_rows * matches_per_probe * self.config.cpu_index_tuple_cost,
        )

    # -- other operators --------------------------------------------------------

    def sort(self, rows: float, pages: float) -> Cost:
        if rows <= 1:
            return Cost()
        passes = math.log2(max(2.0, rows))
        return Cost(
            io=pages * self.config.sort_page_cost,
            cpu=rows * passes * self.config.cpu_operator_cost,
        )

    def aggregate(self, rows: float, groups: float) -> Cost:
        return Cost(cpu=(rows + groups) * self.config.cpu_tuple_cost)

    def filter(self, rows: float, predicates: float = 1.0) -> Cost:
        return Cost(cpu=rows * predicates * self.config.cpu_operator_cost)

    def project(self, rows: float, expressions: float = 1.0) -> Cost:
        return Cost(cpu=rows * expressions * self.config.cpu_operator_cost)

    # -- actual-cost conversion ---------------------------------------------------

    def actual_cost(self, logical_reads: int, tuples: int) -> Cost:
        """Convert executor counters into the model's cost units so the
        monitor can store actual and estimated costs side by side."""
        return Cost(
            io=logical_reads * self.config.io_page_cost,
            cpu=tuples * self.config.cpu_tuple_cost,
        )
