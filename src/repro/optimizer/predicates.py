"""Predicate analysis: qualification, conjunct splitting, classification."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.sql import ast_nodes as ast


def split_conjuncts(expr: ast.Expression | None) -> list[ast.Expression]:
    """Flatten a boolean expression into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: list[ast.Expression]) -> ast.Expression | None:
    """Combine conjuncts back into a single expression (or None)."""
    result: ast.Expression | None = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp(
            "and", result, conjunct)
    return result


class BindingResolver:
    """Resolves (and rewrites) column references against FROM bindings."""

    def __init__(self, binding_columns: dict[str, tuple[str, ...]]) -> None:
        self._binding_columns = binding_columns
        self._column_bindings: dict[str, list[str]] = {}
        for binding, columns in binding_columns.items():
            for column in columns:
                self._column_bindings.setdefault(column, []).append(binding)

    @property
    def bindings(self) -> tuple[str, ...]:
        return tuple(self._binding_columns)

    def columns_of(self, binding: str) -> tuple[str, ...]:
        return self._binding_columns[binding]

    def resolve(self, ref: ast.ColumnRef) -> ast.ColumnRef:
        """Return a fully qualified copy of ``ref``."""
        if ref.table is not None:
            columns = self._binding_columns.get(ref.table)
            if columns is None:
                raise OptimizerError(f"unknown table binding {ref.table!r}")
            if ref.name not in columns:
                raise OptimizerError(
                    f"binding {ref.table!r} has no column {ref.name!r}"
                )
            return ref
        owners = self._column_bindings.get(ref.name, [])
        if not owners:
            raise OptimizerError(f"unknown column {ref.name!r}")
        if len(owners) > 1:
            raise OptimizerError(
                f"column {ref.name!r} is ambiguous between bindings "
                f"{', '.join(sorted(owners))}"
            )
        return ast.ColumnRef(ref.name, table=owners[0])

    def qualify(self, expr: ast.Expression) -> ast.Expression:
        """Rewrite ``expr`` with every column reference fully qualified."""
        if isinstance(expr, ast.ColumnRef):
            return self.resolve(expr)
        if isinstance(expr, ast.Literal) or isinstance(expr, ast.Star):
            return expr
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, self.qualify(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, self.qualify(expr.left),
                                self.qualify(expr.right))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(self.qualify(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(self.qualify(expr.operand),
                              tuple(self.qualify(i) for i in expr.items),
                              expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(self.qualify(expr.operand),
                               self.qualify(expr.low),
                               self.qualify(expr.high), expr.negated)
        if isinstance(expr, ast.FunctionCall):
            return ast.FunctionCall(expr.name,
                                    tuple(self.qualify(a) for a in expr.args),
                                    expr.distinct)
        raise OptimizerError(f"cannot qualify expression {expr!r}")


def expression_bindings(expr: ast.Expression) -> frozenset[str]:
    """Bindings referenced by a fully qualified expression."""
    return frozenset(
        ref.table for ref in ast.referenced_columns(expr)
        if ref.table is not None
    )


@dataclass(frozen=True)
class JoinEdge:
    """One equi-join predicate between two bindings."""

    left: ast.ColumnRef
    right: ast.ColumnRef

    @property
    def bindings(self) -> frozenset[str]:
        return frozenset((self.left.table, self.right.table))

    def column_for(self, binding: str) -> ast.ColumnRef:
        if self.left.table == binding:
            return self.left
        if self.right.table == binding:
            return self.right
        raise OptimizerError(f"edge does not touch binding {binding!r}")

    def other(self, binding: str) -> ast.ColumnRef:
        if self.left.table == binding:
            return self.right
        return self.left

    def to_expression(self) -> ast.Expression:
        return ast.BinaryOp("=", self.left, self.right)


@dataclass
class ClassifiedPredicates:
    """WHERE/ON conjuncts split by role."""

    per_binding: dict[str, list[ast.Expression]]
    edges: list[JoinEdge]
    residual: list[ast.Expression]


def classify_conjuncts(conjuncts: list[ast.Expression]) -> ClassifiedPredicates:
    """Split qualified conjuncts into single-table predicates, equi-join
    edges and residual (multi-table, non-equi) predicates."""
    per_binding: dict[str, list[ast.Expression]] = {}
    edges: list[JoinEdge] = []
    residual: list[ast.Expression] = []
    for conjunct in conjuncts:
        bindings = expression_bindings(conjunct)
        if len(bindings) <= 1:
            if bindings:
                per_binding.setdefault(next(iter(bindings)), []).append(conjunct)
            else:
                residual.append(conjunct)
            continue
        if (len(bindings) == 2 and isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
                and isinstance(conjunct.left, ast.ColumnRef)
                and isinstance(conjunct.right, ast.ColumnRef)
                and conjunct.left.table != conjunct.right.table):
            edges.append(JoinEdge(conjunct.left, conjunct.right))
            continue
        residual.append(conjunct)
    return ClassifiedPredicates(per_binding, edges, residual)
