"""Selectivity estimation from histograms, with System-R style defaults.

When a column has no collected statistics the estimator falls back to
fixed default selectivities.  This is deliberately faithful to the
paper's host system: *missing statistics produce bad estimates*, the
actual-vs-estimated divergence the analyzer's first rule detects.
"""

from __future__ import annotations

from typing import Callable

from repro.catalog.statistics import ColumnStatistics
from repro.config import CostModelConfig
from repro.sql import ast_nodes as ast

StatsResolver = Callable[[ast.ColumnRef], ColumnStatistics | None]

DEFAULT_NULL_SELECTIVITY = 0.01
DEFAULT_LIKE_SELECTIVITY = 0.1
DEFAULT_LIKE_PREFIX_SELECTIVITY = 0.05
DEFAULT_JOIN_SELECTIVITY = 0.01
DEFAULT_OTHER_SELECTIVITY = 0.25


def _literal_value(expr: ast.Expression):
    """Return the literal's value, unwrapping a unary minus."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if (isinstance(expr, ast.UnaryOp) and expr.op == "-"
            and isinstance(expr.operand, ast.Literal)
            and isinstance(expr.operand.value, (int, float))):
        return -expr.operand.value
    return _NOT_A_LITERAL


_NOT_A_LITERAL = object()


class SelectivityEstimator:
    """Estimates the fraction of rows surviving a predicate."""

    def __init__(self, config: CostModelConfig | None = None) -> None:
        self.config = config or CostModelConfig()

    # -- entry points ----------------------------------------------------

    def selectivity(self, expr: ast.Expression,
                    resolve: StatsResolver) -> float:
        """Selectivity of an arbitrary boolean expression."""
        if isinstance(expr, ast.BinaryOp):
            if expr.op == "and":
                return (self.selectivity(expr.left, resolve)
                        * self.selectivity(expr.right, resolve))
            if expr.op == "or":
                s1 = self.selectivity(expr.left, resolve)
                s2 = self.selectivity(expr.right, resolve)
                return min(1.0, s1 + s2 - s1 * s2)
            if expr.op == "like":
                return self._like_selectivity(expr)
            if expr.op in ("=", "!=", "<", "<=", ">", ">="):
                return self._comparison_selectivity(expr, resolve)
            return DEFAULT_OTHER_SELECTIVITY
        if isinstance(expr, ast.UnaryOp) and expr.op == "not":
            return max(0.0, 1.0 - self.selectivity(expr.operand, resolve))
        if isinstance(expr, ast.IsNull):
            return self._is_null_selectivity(expr, resolve)
        if isinstance(expr, ast.InList):
            return self._in_list_selectivity(expr, resolve)
        if isinstance(expr, ast.Between):
            return self._between_selectivity(expr, resolve)
        if isinstance(expr, ast.Literal):
            if expr.value is True:
                return 1.0
            if expr.value in (False, None):
                return 0.0
        return DEFAULT_OTHER_SELECTIVITY

    def equality_selectivity(self, column: ast.ColumnRef, value,
                             resolve: StatsResolver) -> float:
        """Selectivity of ``column = value``."""
        stats = resolve(column)
        if stats is not None:
            return max(1e-9, min(1.0, stats.selectivity_eq(value)))
        return self.config.default_selectivity_eq

    def range_selectivity(self, column: ast.ColumnRef, lo, hi,
                          resolve: StatsResolver,
                          lo_inclusive: bool = True,
                          hi_inclusive: bool = True) -> float:
        """Selectivity of ``lo <= column <= hi`` (None = open bound)."""
        stats = resolve(column)
        if stats is not None and stats.histogram is not None:
            fraction = stats.histogram.selectivity_range(
                lo, hi, lo_inclusive, hi_inclusive
            )
            return max(1e-9, min(1.0, fraction * (1.0 - stats.null_fraction)))
        return self.config.default_selectivity_range

    def join_selectivity(self, left: ColumnStatistics | None,
                         right: ColumnStatistics | None) -> float:
        """Equi-join selectivity: 1 / max(ndv_left, ndv_right)."""
        ndvs = [s.n_distinct for s in (left, right)
                if s is not None and s.n_distinct > 0]
        if not ndvs:
            return DEFAULT_JOIN_SELECTIVITY
        return 1.0 / max(ndvs)

    # -- helpers ------------------------------------------------------------

    def _comparison_selectivity(self, expr: ast.BinaryOp,
                                resolve: StatsResolver) -> float:
        column, value, op = self._sargable_parts(expr)
        if column is None:
            return DEFAULT_OTHER_SELECTIVITY
        if op == "=":
            return self.equality_selectivity(column, value, resolve)
        if op == "!=":
            return max(
                0.0, 1.0 - self.equality_selectivity(column, value, resolve)
            )
        if op in ("<", "<="):
            return self.range_selectivity(column, None, value, resolve,
                                          hi_inclusive=(op == "<="))
        return self.range_selectivity(column, value, None, resolve,
                                      lo_inclusive=(op == ">="))

    @staticmethod
    def _sargable_parts(expr: ast.BinaryOp):
        """Normalize ``col op literal`` / ``literal op col`` to
        (column, value, op-with-column-on-the-left)."""
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "=": "=", "!=": "!="}
        left_value = _literal_value(expr.left)
        right_value = _literal_value(expr.right)
        if isinstance(expr.left, ast.ColumnRef) \
                and right_value is not _NOT_A_LITERAL:
            return expr.left, right_value, expr.op
        if isinstance(expr.right, ast.ColumnRef) \
                and left_value is not _NOT_A_LITERAL:
            return expr.right, left_value, flipped[expr.op]
        return None, None, expr.op

    def _is_null_selectivity(self, expr: ast.IsNull,
                             resolve: StatsResolver) -> float:
        fraction = DEFAULT_NULL_SELECTIVITY
        if isinstance(expr.operand, ast.ColumnRef):
            stats = resolve(expr.operand)
            if stats is not None:
                fraction = stats.null_fraction
        return max(0.0, 1.0 - fraction) if expr.negated else fraction

    def _in_list_selectivity(self, expr: ast.InList,
                             resolve: StatsResolver) -> float:
        if not isinstance(expr.operand, ast.ColumnRef):
            return DEFAULT_OTHER_SELECTIVITY
        total = 0.0
        for item in expr.items:
            value = _literal_value(item)
            if value is _NOT_A_LITERAL:
                total += self.config.default_selectivity_eq
            else:
                total += self.equality_selectivity(expr.operand, value, resolve)
        total = min(1.0, total)
        return max(0.0, 1.0 - total) if expr.negated else total

    def _between_selectivity(self, expr: ast.Between,
                             resolve: StatsResolver) -> float:
        lo = _literal_value(expr.low)
        hi = _literal_value(expr.high)
        if (not isinstance(expr.operand, ast.ColumnRef)
                or lo is _NOT_A_LITERAL or hi is _NOT_A_LITERAL):
            return DEFAULT_OTHER_SELECTIVITY
        fraction = self.range_selectivity(expr.operand, lo, hi, resolve)
        return max(0.0, 1.0 - fraction) if expr.negated else fraction

    @staticmethod
    def _like_selectivity(expr: ast.BinaryOp) -> float:
        pattern = _literal_value(expr.right)
        if isinstance(pattern, str) and pattern and not pattern.startswith(
                ("%", "_")):
            return DEFAULT_LIKE_PREFIX_SELECTIVITY
        return DEFAULT_LIKE_SELECTIVITY
