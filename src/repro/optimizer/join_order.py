"""Join enumeration: dynamic programming with a greedy fallback.

Up to ``join_dp_threshold`` inputs the enumerator runs System-R style
bitmask DP over connected sub-plans (cross products only when a query
is genuinely disconnected); beyond that it falls back to a greedy
left-deep heuristic.  For every pair it considers hash join, (block)
nested loops and — when the inner side is a single base table reachable
through a B-Tree or a (possibly virtual) secondary index on the join
columns — an index-lookup join.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.catalog.schema import StorageStructure
from repro.errors import OptimizerError
from repro.optimizer.access_paths import _finalize
from repro.optimizer.cost_model import Cost, CostModel
from repro.optimizer.interfaces import IndexInfo, TableInfo
from repro.optimizer.plans import (
    HashJoinPlan,
    IndexLookupJoinPlan,
    NestedLoopJoinPlan,
    PlanNode,
)
from repro.optimizer.predicates import JoinEdge, conjoin
from repro.optimizer.selectivity import SelectivityEstimator, StatsResolver
from repro.sql import ast_nodes as ast


@dataclass
class SubPlan:
    """A plan covering a set of bindings."""

    plan: PlanNode
    bindings: frozenset[str]

    @property
    def rows(self) -> float:
        return self.plan.estimated_rows

    @property
    def cost(self) -> float:
        return self.plan.estimated_cost


class JoinEnumerator:
    def __init__(self, cost_model: CostModel,
                 estimator: SelectivityEstimator,
                 tables: dict[str, TableInfo],
                 indexes: dict[str, tuple[IndexInfo, ...]],
                 per_binding_predicates: dict[str, list[ast.Expression]],
                 resolve: StatsResolver,
                 dp_threshold: int = 6) -> None:
        self._cost_model = cost_model
        self._estimator = estimator
        self._tables = tables
        self._indexes = indexes
        self._per_binding = per_binding_predicates
        self._resolve = resolve
        self._dp_threshold = dp_threshold

    # -- public ---------------------------------------------------------------

    def enumerate(self, leaves: dict[str, SubPlan],
                  edges: list[JoinEdge]) -> SubPlan:
        if not leaves:
            raise OptimizerError("no FROM inputs to join")
        if len(leaves) == 1:
            return next(iter(leaves.values()))
        if len(leaves) <= self._dp_threshold:
            return self._dp(leaves, edges)
        return self._greedy(leaves, edges)

    # -- DP ----------------------------------------------------------------------

    def _dp(self, leaves: dict[str, SubPlan],
            edges: list[JoinEdge]) -> SubPlan:
        names = sorted(leaves)
        n = len(names)
        index_of = {name: i for i, name in enumerate(names)}
        best: dict[int, SubPlan] = {
            1 << index_of[name]: plan for name, plan in leaves.items()
        }
        edge_masks = [
            sum(1 << index_of[b] for b in edge.bindings) for edge in edges
        ]
        full = (1 << n) - 1
        for size in range(2, n + 1):
            for combo in combinations(range(n), size):
                mask = sum(1 << i for i in combo)
                candidate = self._best_split(mask, best, edges, edge_masks,
                                             connected_only=True)
                if candidate is None:
                    candidate = self._best_split(mask, best, edges,
                                                 edge_masks,
                                                 connected_only=False)
                if candidate is not None:
                    best[mask] = candidate
        result = best.get(full)
        if result is None:
            raise OptimizerError("join enumeration failed to cover all inputs")
        return result

    def _best_split(self, mask: int, best: dict[int, SubPlan],
                    edges: list[JoinEdge], edge_masks: list[int],
                    connected_only: bool) -> SubPlan | None:
        winner: SubPlan | None = None
        # Iterate proper submasks; visit each unordered split once by
        # requiring the submask to contain the lowest set bit.
        low_bit = mask & (-mask)
        sub = (mask - 1) & mask
        while sub:
            other = mask ^ sub
            if sub & low_bit:
                left_plan = best.get(sub)
                right_plan = best.get(other)
                if left_plan is not None and right_plan is not None:
                    between = [
                        edge for edge, emask in zip(edges, edge_masks)
                        if emask & sub and emask & other
                        and not (emask & ~mask)
                    ]
                    if between or not connected_only:
                        for candidate in self._join_candidates(
                                left_plan, right_plan, between):
                            if winner is None or candidate.cost < winner.cost:
                                winner = candidate
            sub = (sub - 1) & mask
        return winner

    # -- greedy -----------------------------------------------------------------

    def _greedy(self, leaves: dict[str, SubPlan],
                edges: list[JoinEdge]) -> SubPlan:
        remaining = dict(leaves)
        current = self._cheapest_pair(remaining, edges)
        for binding in current.bindings:
            remaining.pop(binding)
        while remaining:
            best_candidate: SubPlan | None = None
            best_binding: str | None = None
            for binding, leaf in remaining.items():
                between = self._edges_between(edges, current.bindings,
                                              leaf.bindings)
                for candidate in self._join_candidates(current, leaf, between):
                    if best_candidate is None \
                            or candidate.cost < best_candidate.cost:
                        best_candidate = candidate
                        best_binding = binding
            assert best_candidate is not None and best_binding is not None
            current = best_candidate
            remaining.pop(best_binding)
        return current

    def _cheapest_pair(self, leaves: dict[str, SubPlan],
                       edges: list[JoinEdge]) -> SubPlan:
        best: SubPlan | None = None
        names = sorted(leaves)
        for a, b in combinations(names, 2):
            between = self._edges_between(edges, leaves[a].bindings,
                                          leaves[b].bindings)
            if not between:
                continue
            for candidate in self._join_candidates(leaves[a], leaves[b],
                                                   between):
                if best is None or candidate.cost < best.cost:
                    best = candidate
        if best is None:  # fully disconnected workload: allow a cross pair
            a, b = names[0], names[1]
            candidates = self._join_candidates(leaves[a], leaves[b], [])
            best = min(candidates, key=lambda c: c.cost)
        return best

    @staticmethod
    def _edges_between(edges: list[JoinEdge], left: frozenset[str],
                       right: frozenset[str]) -> list[JoinEdge]:
        result = []
        for edge in edges:
            bindings = edge.bindings
            if (bindings & left) and (bindings & right):
                result.append(edge)
        return result

    # -- join method candidates ------------------------------------------------------

    def _join_candidates(self, left: SubPlan, right: SubPlan,
                         between: list[JoinEdge]) -> list[SubPlan]:
        out_bindings = left.bindings | right.bindings
        out_rows = self._joined_rows(left, right, between)
        candidates: list[SubPlan] = []
        if between:
            candidates.append(self._hash_join(left, right, between, out_rows))
            candidates.append(self._hash_join(right, left, between, out_rows))
        candidates.append(self._nested_loop(left, right, between, out_rows))
        candidates.append(self._nested_loop(right, left, between, out_rows))
        for outer, inner in ((left, right), (right, left)):
            if len(inner.bindings) == 1:
                lookup = self._index_lookup(outer, inner, between, out_rows)
                candidates.extend(lookup)
        return [SubPlan(plan, out_bindings) for plan in candidates]

    def _joined_rows(self, left: SubPlan, right: SubPlan,
                     between: list[JoinEdge]) -> float:
        selectivity = 1.0
        for edge in between:
            selectivity *= self._estimator.join_selectivity(
                self._resolve(edge.left), self._resolve(edge.right)
            )
        return max(1.0, left.rows * right.rows * selectivity)

    def _hash_join(self, probe: SubPlan, build: SubPlan,
                   between: list[JoinEdge], out_rows: float) -> PlanNode:
        left_keys = []
        right_keys = []
        for edge in between:
            left_binding = next(iter(edge.bindings & probe.bindings))
            left_keys.append(edge.column_for(left_binding))
            right_keys.append(edge.other(left_binding))
        plan = HashJoinPlan(
            left=probe.plan,
            right=build.plan,
            left_keys=tuple(left_keys),
            right_keys=tuple(right_keys),
        )
        cost = Cost(
            io=probe.plan.estimated_io_cost + build.plan.estimated_io_cost,
            cpu=probe.plan.estimated_cpu_cost + build.plan.estimated_cpu_cost,
        ) + self._cost_model.hash_join(build.rows, probe.rows)
        _finalize(plan, out_rows, cost)
        return plan

    def _nested_loop(self, outer: SubPlan, inner: SubPlan,
                     between: list[JoinEdge], out_rows: float) -> PlanNode:
        condition = conjoin([edge.to_expression() for edge in between])
        plan = NestedLoopJoinPlan(
            left=outer.plan,
            right=inner.plan,
            condition=condition,
        )
        cost = Cost(
            io=outer.plan.estimated_io_cost + inner.plan.estimated_io_cost,
            cpu=outer.plan.estimated_cpu_cost + inner.plan.estimated_cpu_cost,
        ) + self._cost_model.nested_loop_join(outer.rows, inner.rows, Cost())
        _finalize(plan, out_rows, cost)
        return plan

    def _index_lookup(self, outer: SubPlan, inner: SubPlan,
                      between: list[JoinEdge],
                      out_rows: float) -> list[PlanNode]:
        binding = next(iter(inner.bindings))
        table = self._tables[binding]
        inner_predicates = self._per_binding.get(binding, [])
        edge_by_column: dict[str, JoinEdge] = {}
        for edge in between:
            column = edge.column_for(binding)
            edge_by_column.setdefault(column.name, edge)
        if not edge_by_column:
            return []
        plans: list[PlanNode] = []
        # Primary-structure lookup (B-Tree prefix or full-key hash probe).
        if table.key_columns:
            hash_primary = table.structure is StorageStructure.HASH
            covered = all(c in edge_by_column for c in table.key_columns)
            if not hash_primary or covered:
                plans.extend(self._lookup_via(
                    outer, binding, table, None, table.key_columns,
                    table.lookup_pages, 0.0, edge_by_column, between,
                    inner_predicates, out_rows,
                    require_full_key=hash_primary,
                ))
        for index in self._indexes.get(binding, ()):  # secondary indexes
            plans.extend(self._lookup_via(
                outer, binding, table, index, index.definition.column_names,
                index.height, table.fetch_height, edge_by_column, between,
                inner_predicates, out_rows,
            ))
        return plans

    def _lookup_via(self, outer: SubPlan, binding: str, table: TableInfo,
                    index: IndexInfo | None, key_columns: tuple[str, ...],
                    lookup_height: float, fetch_height: float,
                    edge_by_column: dict[str, JoinEdge],
                    between: list[JoinEdge],
                    inner_predicates: list[ast.Expression],
                    out_rows: float,
                    require_full_key: bool = False) -> list[PlanNode]:
        prefix: list[str] = []
        for column in key_columns:
            if column in edge_by_column:
                prefix.append(column)
            else:
                break
        if not prefix:
            return []
        if require_full_key and len(prefix) != len(key_columns):
            return []
        used_edges = [edge_by_column[c] for c in prefix]
        outer_keys = tuple(e.other(binding) for e in used_edges)
        leftover_edges = [e for e in between if e not in used_edges]
        residual = conjoin(
            [e.to_expression() for e in leftover_edges] + inner_predicates
        )
        edge_selectivity = 1.0
        for edge in used_edges:
            edge_selectivity *= self._estimator.join_selectivity(
                self._resolve(edge.left), self._resolve(edge.right)
            )
        matches_per_probe = max(0.0, table.row_count * edge_selectivity)
        plan = IndexLookupJoinPlan(
            left=outer.plan,
            table_name=table.name,
            binding=binding,
            columns=table.schema.column_names,
            outer_keys=outer_keys,
            inner_key_columns=tuple(prefix),
            via_index=index.definition.name if index else None,
            virtual=index.is_virtual if index else False,
            residual=residual,
        )
        cost = Cost(
            io=outer.plan.estimated_io_cost,
            cpu=outer.plan.estimated_cpu_cost,
        ) + self._cost_model.index_lookup_join(
            outer_rows=outer.rows,
            lookup_height=lookup_height,
            matches_per_probe=matches_per_probe,
            fetch_height=fetch_height,
        ) + self._cost_model.filter(
            outer.rows * matches_per_probe,
            max(1, len(inner_predicates) + len(leftover_edges)),
        )
        # The residual re-applies the inner predicates, so the output
        # cardinality equals the generic joined-rows estimate.
        _finalize(plan, out_rows, cost)
        return [plan]
