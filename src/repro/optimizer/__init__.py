"""Cost-based query optimizer.

The optimizer estimates costs with the engine's own cost model
(requirement ii in section IV of the paper: every what-if decision must
come from the DBMS' internal model so that recommended changes are
actually used).  It selects access paths — sequential scan, primary
B-Tree range scan, secondary index scan (real or *virtual*) — and join
orders/methods, producing a physical plan tree annotated with estimated
rows and costs.
"""

from repro.optimizer.optimizer import Optimizer, OptimizationResult
from repro.optimizer.cost_model import CostModel
from repro.optimizer import plans

__all__ = ["Optimizer", "OptimizationResult", "CostModel", "plans"]
