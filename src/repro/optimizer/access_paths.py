"""Single-table access path selection.

For one FROM binding with its pushed-down predicates, enumerate:

* a sequential scan (always available),
* a keyed B-Tree range scan when the table is stored as a B-Tree and
  the predicates bound a prefix of its key,
* a secondary index scan for every matching real index — and, in
  what-if mode, every matching *virtual* index,

cost each with the engine's cost model and return the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.catalog.statistics import ColumnStatistics
from repro.optimizer.cost_model import Cost, CostModel
from repro.optimizer.interfaces import IndexInfo, TableInfo
from repro.catalog.schema import StorageStructure
from repro.optimizer.plans import (
    BTreeScanPlan,
    HashScanPlan,
    IndexScanPlan,
    KeyCondition,
    PlanNode,
    SeqScanPlan,
)
from repro.optimizer.predicates import conjoin
from repro.optimizer.selectivity import (
    SelectivityEstimator,
    StatsResolver,
    _literal_value,
    _NOT_A_LITERAL,
)
from repro.sql import ast_nodes as ast

_RANGE_OPS = {"<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass
class _Sarg:
    """A sargable predicate bound to one column of this binding."""

    column: str
    op: str
    value: object
    source_index: int  # position in the predicate list (for consumption)


def _extract_sargs(binding: str,
                   predicates: list[ast.Expression]) -> list[_Sarg]:
    sargs: list[_Sarg] = []
    for i, predicate in enumerate(predicates):
        if isinstance(predicate, ast.Between):
            operand = predicate.operand
            lo = _literal_value(predicate.low)
            hi = _literal_value(predicate.high)
            if (isinstance(operand, ast.ColumnRef) and not predicate.negated
                    and lo is not _NOT_A_LITERAL and hi is not _NOT_A_LITERAL):
                sargs.append(_Sarg(operand.name, ">=", lo, i))
                sargs.append(_Sarg(operand.name, "<=", hi, i))
            continue
        if not isinstance(predicate, ast.BinaryOp):
            continue
        if predicate.op not in _RANGE_OPS and predicate.op != "=":
            continue
        left, right = predicate.left, predicate.right
        if isinstance(left, ast.ColumnRef):
            value = _literal_value(right)
            if value is not _NOT_A_LITERAL:
                sargs.append(_Sarg(left.name, predicate.op, value, i))
                continue
        if isinstance(right, ast.ColumnRef):
            value = _literal_value(left)
            if value is not _NOT_A_LITERAL:
                sargs.append(_Sarg(right.name, _FLIP[predicate.op], value, i))
    return sargs


@dataclass
class KeyMatch:
    """Sargable conditions matched against a key column sequence."""

    conditions: tuple[KeyCondition, ...]
    consumed: frozenset[int]
    equality_columns: int
    has_range: bool

    @property
    def matched(self) -> bool:
        return bool(self.conditions)


def match_key_prefix(key_columns: tuple[str, ...],
                     sargs: list[_Sarg]) -> KeyMatch:
    """Match equality conditions on leading key columns, then at most
    one range-bounded column — the classic B-Tree prefix rule."""
    conditions: list[KeyCondition] = []
    consumed: set[int] = set()
    eq_columns = 0
    has_range = False
    for column in key_columns:
        eq = next((s for s in sargs if s.column == column and s.op == "="),
                  None)
        if eq is not None:
            conditions.append(KeyCondition(column, "=", eq.value))
            consumed.add(eq.source_index)
            eq_columns += 1
            continue
        ranges = [s for s in sargs
                  if s.column == column and s.op in _RANGE_OPS]
        for sarg in ranges[:2]:
            conditions.append(KeyCondition(column, sarg.op, sarg.value))
            consumed.add(sarg.source_index)
            has_range = True
        break
    return KeyMatch(tuple(conditions), frozenset(consumed),
                    eq_columns, has_range)


class AccessPathSelector:
    """Chooses the cheapest access path for one binding."""

    def __init__(self, cost_model: CostModel,
                 estimator: SelectivityEstimator) -> None:
        self._cost_model = cost_model
        self._estimator = estimator

    def best_path(self, binding: str, table: TableInfo,
                  indexes: tuple[IndexInfo, ...],
                  predicates: list[ast.Expression],
                  resolve: StatsResolver) -> PlanNode:
        """Return the cheapest plan scanning ``table`` under ``predicates``."""
        candidates = self.candidate_paths(binding, table, indexes,
                                          predicates, resolve)
        return min(candidates, key=lambda p: p.estimated_cost)

    def candidate_paths(self, binding: str, table: TableInfo,
                        indexes: tuple[IndexInfo, ...],
                        predicates: list[ast.Expression],
                        resolve: StatsResolver) -> list[PlanNode]:
        columns = table.schema.column_names
        sargs = _extract_sargs(binding, predicates)
        total_selectivity = self._combined_selectivity(predicates, resolve)
        out_rows = max(0.0, table.row_count * total_selectivity)
        candidates: list[PlanNode] = [
            self._seq_scan(binding, table, columns, predicates, out_rows)
        ]
        if table.key_columns and table.structure is StorageStructure.BTREE:
            plan = self._btree_scan(binding, table, columns, predicates,
                                    sargs, out_rows, resolve)
            if plan is not None:
                candidates.append(plan)
        if table.key_columns and table.structure is StorageStructure.HASH:
            plan = self._hash_scan(binding, table, columns, predicates,
                                   sargs, out_rows, resolve)
            if plan is not None:
                candidates.append(plan)
        for index in indexes:
            plan = self._index_scan(binding, table, index, columns,
                                    predicates, sargs, out_rows, resolve)
            if plan is not None:
                candidates.append(plan)
        return candidates

    # -- individual paths ---------------------------------------------------

    def _seq_scan(self, binding: str, table: TableInfo,
                  columns: tuple[str, ...],
                  predicates: list[ast.Expression],
                  out_rows: float) -> SeqScanPlan:
        plan = SeqScanPlan(
            table_name=table.name,
            binding=binding,
            columns=columns,
            filter_expr=conjoin(predicates),
        )
        cost = self._cost_model.seq_scan(
            pages=max(1, table.page_count),
            overflow_pages=table.overflow_pages,
            rows=table.row_count,
        ) + self._cost_model.filter(table.row_count, max(1, len(predicates)))
        _finalize(plan, out_rows, cost)
        return plan

    def _btree_scan(self, binding: str, table: TableInfo,
                    columns: tuple[str, ...],
                    predicates: list[ast.Expression],
                    sargs: list[_Sarg], out_rows: float,
                    resolve: StatsResolver) -> BTreeScanPlan | None:
        match = match_key_prefix(table.key_columns, sargs)
        if not match.matched:
            return None
        key_selectivity = self._key_selectivity(binding, match, resolve)
        residual = [p for i, p in enumerate(predicates)
                    if i not in match.consumed]
        plan = BTreeScanPlan(
            table_name=table.name,
            binding=binding,
            columns=columns,
            key_conditions=match.conditions,
            filter_expr=conjoin(residual),
        )
        cost = self._cost_model.btree_range_scan(
            height=table.btree_height,
            leaf_pages=max(1, table.btree_leaf_pages),
            selectivity=key_selectivity,
            rows=table.row_count,
        ) + self._cost_model.filter(table.row_count * key_selectivity,
                                    max(1, len(residual)))
        _finalize(plan, out_rows, cost)
        return plan

    def _hash_scan(self, binding: str, table: TableInfo,
                   columns: tuple[str, ...],
                   predicates: list[ast.Expression],
                   sargs: list[_Sarg], out_rows: float,
                   resolve: StatsResolver) -> HashScanPlan | None:
        """Hash structures support only full-key equality probes."""
        conditions: list[KeyCondition] = []
        consumed: set[int] = set()
        for column in table.key_columns:
            eq = next((s for s in sargs
                       if s.column == column and s.op == "="), None)
            if eq is None:
                return None
            conditions.append(KeyCondition(column, "=", eq.value))
            consumed.add(eq.source_index)
        key_selectivity = self._key_selectivity(
            binding,
            KeyMatch(tuple(conditions), frozenset(consumed),
                     len(conditions), False),
            resolve)
        residual = [p for i, p in enumerate(predicates)
                    if i not in consumed]
        plan = HashScanPlan(
            table_name=table.name,
            binding=binding,
            columns=columns,
            key_conditions=tuple(conditions),
            filter_expr=conjoin(residual),
        )
        matches = table.row_count * key_selectivity
        cost = self._cost_model.hash_lookup(
            chain_pages=table.hash_chain_pages, matches=matches,
        ) + self._cost_model.filter(matches, max(1, len(residual)))
        _finalize(plan, out_rows, cost)
        return plan

    def _index_scan(self, binding: str, table: TableInfo, index: IndexInfo,
                    columns: tuple[str, ...],
                    predicates: list[ast.Expression],
                    sargs: list[_Sarg], out_rows: float,
                    resolve: StatsResolver) -> IndexScanPlan | None:
        match = match_key_prefix(index.definition.column_names, sargs)
        if not match.matched:
            return None
        key_selectivity = self._key_selectivity(binding, match, resolve)
        residual = [p for i, p in enumerate(predicates)
                    if i not in match.consumed]
        plan = IndexScanPlan(
            index_name=index.definition.name,
            table_name=table.name,
            binding=binding,
            columns=columns,
            key_conditions=match.conditions,
            filter_expr=conjoin(residual),
            virtual=index.is_virtual,
        )
        cost = self._cost_model.index_scan(
            index_height=index.height,
            index_leaf_pages=max(1, index.leaf_pages),
            selectivity=key_selectivity,
            table_rows=table.row_count,
            fetch_height=table.fetch_height,
        ) + self._cost_model.filter(table.row_count * key_selectivity,
                                    max(1, len(residual)))
        _finalize(plan, out_rows, cost)
        return plan

    # -- selectivity helpers ---------------------------------------------------

    def _combined_selectivity(self, predicates: list[ast.Expression],
                              resolve: StatsResolver) -> float:
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self._estimator.selectivity(predicate, resolve)
        return selectivity

    def _key_selectivity(self, binding: str, match: KeyMatch,
                         resolve: StatsResolver) -> float:
        selectivity = 1.0
        range_lo: KeyCondition | None = None
        range_hi: KeyCondition | None = None
        for condition in match.conditions:
            ref = ast.ColumnRef(condition.column, table=binding)
            if condition.op == "=":
                selectivity *= self._estimator.equality_selectivity(
                    ref, condition.value, resolve)
            elif condition.op in (">", ">="):
                range_lo = condition
            else:
                range_hi = condition
        if range_lo is not None or range_hi is not None:
            column = (range_lo or range_hi).column
            ref = ast.ColumnRef(column, table=binding)
            selectivity *= self._estimator.range_selectivity(
                ref,
                range_lo.value if range_lo else None,
                range_hi.value if range_hi else None,
                resolve,
                lo_inclusive=(range_lo.op == ">=" if range_lo else True),
                hi_inclusive=(range_hi.op == "<=" if range_hi else True),
            )
        return max(1e-9, min(1.0, selectivity))


def _finalize(plan: PlanNode, rows: float, cost: Cost) -> None:
    """Stamp estimates onto a plan node."""
    plan.estimated_rows = rows
    plan.estimated_cost = cost.total
    plan.estimated_io_cost = cost.io
    plan.estimated_cpu_cost = cost.cpu
