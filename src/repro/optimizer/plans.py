"""Physical plan nodes.

Plan nodes are produced by the optimizer and consumed by the executor.
Each node carries its *cumulative* estimated cost and output cardinality
and knows its output scope — the ordered ``(binding, column)`` pairs an
expression compiler resolves column references against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sql import ast_nodes as ast

Scope = tuple[tuple[str | None, str], ...]
"""Ordered output columns as (binding, column_name); binding is None for
computed columns."""


@dataclass
class PlanNode:
    """Base class: estimated output rows and cumulative cost."""

    estimated_rows: float = field(default=0.0, init=False)
    estimated_cost: float = field(default=0.0, init=False)
    estimated_io_cost: float = field(default=0.0, init=False)
    estimated_cpu_cost: float = field(default=0.0, init=False)

    @property
    def scope(self) -> Scope:
        raise NotImplementedError

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def node_label(self) -> str:
        return type(self).__name__.removesuffix("Plan")

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree as indented text."""
        pad = "  " * indent
        line = (f"{pad}{self.node_label()} "
                f"(rows={self.estimated_rows:.0f} "
                f"cost={self.estimated_cost:.1f})")
        parts = [line]
        for child in self.children:
            parts.append(child.explain(indent + 1))
        return "\n".join(parts)

    def walk(self):
        """Yield this node and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def uses_virtual_index(self) -> bool:
        """True if any node in the subtree reads a virtual index."""
        return any(
            isinstance(node, IndexScanPlan) and node.virtual
            for node in self.walk()
        )

    def used_indexes(self) -> tuple[str, ...]:
        """Names of all (real or virtual) indexes read by the subtree."""
        names = [node.index_name for node in self.walk()
                 if isinstance(node, IndexScanPlan)]
        names += [f"{node.table_name}.btree" for node in self.walk()
                  if isinstance(node, BTreeScanPlan) and node.key_bounded]
        names += [f"{node.table_name}.hash" for node in self.walk()
                  if isinstance(node, HashScanPlan)]
        return tuple(dict.fromkeys(names))


@dataclass(frozen=True)
class KeyCondition:
    """A sargable condition on one key column: ``column <op> literal``."""

    column: str
    op: str  # "=", "<", "<=", ">", ">="
    value: Any

    def to_sql(self) -> str:
        return f"{self.column} {self.op} {ast.Literal(self.value).to_sql()}"


@dataclass
class SeqScanPlan(PlanNode):
    """Full scan of a base table with an optional pushed-down filter."""

    table_name: str
    binding: str
    columns: tuple[str, ...]
    filter_expr: ast.Expression | None = None

    @property
    def scope(self) -> Scope:
        return tuple((self.binding, c) for c in self.columns)

    def node_label(self) -> str:
        label = f"SeqScan({self.table_name} as {self.binding})"
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr.to_sql()}"
        return label


@dataclass
class BTreeScanPlan(PlanNode):
    """Keyed (or full, in key order) scan of a B-Tree stored table."""

    table_name: str
    binding: str
    columns: tuple[str, ...]
    key_conditions: tuple[KeyCondition, ...] = ()
    filter_expr: ast.Expression | None = None

    @property
    def key_bounded(self) -> bool:
        return bool(self.key_conditions)

    @property
    def scope(self) -> Scope:
        return tuple((self.binding, c) for c in self.columns)

    def node_label(self) -> str:
        label = f"BTreeScan({self.table_name} as {self.binding})"
        if self.key_conditions:
            keys = " and ".join(c.to_sql() for c in self.key_conditions)
            label += f" key=[{keys}]"
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr.to_sql()}"
        return label


@dataclass
class HashScanPlan(PlanNode):
    """Equality probe into a HASH-structured table (full key only)."""

    table_name: str
    binding: str
    columns: tuple[str, ...]
    key_conditions: tuple[KeyCondition, ...] = ()
    filter_expr: ast.Expression | None = None

    @property
    def scope(self) -> Scope:
        return tuple((self.binding, c) for c in self.columns)

    def node_label(self) -> str:
        keys = " and ".join(c.to_sql() for c in self.key_conditions)
        label = f"HashScan({self.table_name} as {self.binding}) key=[{keys}]"
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr.to_sql()}"
        return label


@dataclass
class IndexScanPlan(PlanNode):
    """Secondary-index access: probe the index B-Tree, fetch base rows.

    ``virtual`` index scans may be *costed* but never executed; the
    what-if advisor relies on the optimizer choosing them when they
    would beat the existing paths.
    """

    index_name: str
    table_name: str
    binding: str
    columns: tuple[str, ...]
    key_conditions: tuple[KeyCondition, ...] = ()
    filter_expr: ast.Expression | None = None
    virtual: bool = False

    @property
    def scope(self) -> Scope:
        return tuple((self.binding, c) for c in self.columns)

    def node_label(self) -> str:
        kind = "VirtualIndexScan" if self.virtual else "IndexScan"
        keys = " and ".join(c.to_sql() for c in self.key_conditions)
        label = (f"{kind}({self.index_name} on {self.table_name} "
                 f"as {self.binding}) key=[{keys}]")
        if self.filter_expr is not None:
            label += f" filter={self.filter_expr.to_sql()}"
        return label


@dataclass
class NestedLoopJoinPlan(PlanNode):
    """Tuple-at-a-time join; the inner side is materialized and rescanned."""

    left: PlanNode
    right: PlanNode
    condition: ast.Expression | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def scope(self) -> Scope:
        return self.left.scope + self.right.scope

    def node_label(self) -> str:
        cond = self.condition.to_sql() if self.condition else "TRUE"
        return f"NestedLoopJoin on {cond}"


@dataclass
class HashJoinPlan(PlanNode):
    """Equi-join: build a hash table on the right side, probe with left."""

    left: PlanNode
    right: PlanNode
    left_keys: tuple[ast.Expression, ...] = ()
    right_keys: tuple[ast.Expression, ...] = ()
    residual: ast.Expression | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def scope(self) -> Scope:
        return self.left.scope + self.right.scope

    def node_label(self) -> str:
        keys = ", ".join(
            f"{l.to_sql()}={r.to_sql()}"
            for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"HashJoin on [{keys}]"


@dataclass
class LeftOuterJoinPlan(PlanNode):
    """LEFT OUTER JOIN: every left row survives; unmatched rows are
    padded with NULLs on the right side.

    When ``left_keys``/``right_keys`` are set the executor matches via a
    hash table; otherwise it evaluates ``condition`` per pair.
    """

    left: PlanNode
    right: PlanNode
    condition: ast.Expression | None = None
    left_keys: tuple[ast.Expression, ...] = ()
    right_keys: tuple[ast.Expression, ...] = ()
    residual: ast.Expression | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def scope(self) -> Scope:
        return self.left.scope + self.right.scope

    def node_label(self) -> str:
        if self.left_keys:
            keys = ", ".join(
                f"{l.to_sql()}={r.to_sql()}"
                for l, r in zip(self.left_keys, self.right_keys))
            return f"LeftOuterJoin (hash) on [{keys}]"
        cond = self.condition.to_sql() if self.condition else "TRUE"
        return f"LeftOuterJoin on {cond}"


@dataclass
class IndexLookupJoinPlan(PlanNode):
    """Nested loop whose inner side is a keyed lookup per outer row.

    The inner side is a base table reached through a secondary index or
    its primary B-Tree; this is the access path that makes recommended
    indexes pay off on join workloads.
    """

    left: PlanNode
    table_name: str
    binding: str
    columns: tuple[str, ...]
    outer_keys: tuple[ast.Expression, ...] = ()
    inner_key_columns: tuple[str, ...] = ()
    via_index: str | None = None  # None means the table's primary B-Tree
    virtual: bool = False
    residual: ast.Expression | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left,)

    @property
    def scope(self) -> Scope:
        return self.left.scope + tuple((self.binding, c) for c in self.columns)

    def node_label(self) -> str:
        path = self.via_index or f"{self.table_name}.btree"
        if self.virtual:
            path += " (virtual)"
        keys = ", ".join(
            f"{col}={expr.to_sql()}"
            for col, expr in zip(self.inner_key_columns, self.outer_keys)
        )
        return (f"IndexLookupJoin -> {self.table_name} as {self.binding} "
                f"via {path} on [{keys}]")

    def uses_virtual_index(self) -> bool:
        return self.virtual or super().uses_virtual_index()

    def used_indexes(self) -> tuple[str, ...]:
        own = self.via_index or f"{self.table_name}.btree"
        return tuple(dict.fromkeys((own,) + self.left.used_indexes()))


@dataclass
class FilterPlan(PlanNode):
    child: PlanNode
    condition: ast.Expression | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def node_label(self) -> str:
        cond = self.condition.to_sql() if self.condition else "TRUE"
        return f"Filter {cond}"


@dataclass
class ProjectPlan(PlanNode):
    child: PlanNode
    expressions: tuple[ast.Expression, ...] = ()
    names: tuple[str, ...] = ()

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        return tuple((None, name) for name in self.names)

    def node_label(self) -> str:
        return f"Project [{', '.join(self.names)}]"


@dataclass
class AggregatePlan(PlanNode):
    """Hash aggregation over optional grouping expressions.

    Output scope: the group expressions first (named by their SQL text),
    then one column per aggregate call (named by its SQL text); the
    parent Project re-maps these onto the user's select list.
    """

    child: PlanNode
    group_expressions: tuple[ast.Expression, ...] = ()
    aggregates: tuple[ast.FunctionCall, ...] = ()

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        group = tuple((None, e.to_sql()) for e in self.group_expressions)
        aggs = tuple((None, a.to_sql()) for a in self.aggregates)
        return group + aggs

    def node_label(self) -> str:
        groups = ", ".join(e.to_sql() for e in self.group_expressions)
        aggs = ", ".join(a.to_sql() for a in self.aggregates)
        return f"Aggregate groups=[{groups}] aggs=[{aggs}]"


@dataclass
class SortPlan(PlanNode):
    child: PlanNode
    sort_keys: tuple[tuple[ast.Expression, bool], ...] = ()
    """(expression, descending) pairs."""

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def node_label(self) -> str:
        keys = ", ".join(
            f"{e.to_sql()}{' DESC' if desc else ''}"
            for e, desc in self.sort_keys
        )
        return f"Sort [{keys}]"


@dataclass
class DistinctPlan(PlanNode):
    child: PlanNode

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        return self.child.scope


@dataclass
class LimitPlan(PlanNode):
    child: PlanNode
    limit: int | None = None
    offset: int | None = None

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def scope(self) -> Scope:
        return self.child.scope

    def node_label(self) -> str:
        return f"Limit {self.limit} offset {self.offset or 0}"
