"""Top-level optimizer: SELECT statement -> physical plan.

The pipeline mirrors a classic System-R optimizer:

1. resolve FROM bindings and qualify every column reference,
2. split WHERE/ON into conjuncts and classify them (single-table,
   equi-join edge, residual),
3. pick the cheapest access path per binding,
4. enumerate join orders/methods,
5. layer residual filters, aggregation, HAVING, ordering, DISTINCT,
   projection and LIMIT on top, propagating cardinalities and costs.

With ``include_virtual=True`` the optimizer also considers virtual
indexes — the what-if mode the analyzer's index advisor drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import EngineConfig
from repro.errors import OptimizerError
from repro.optimizer.access_paths import AccessPathSelector, _finalize
from repro.optimizer.cost_model import Cost, CostModel
from repro.optimizer.interfaces import CatalogView, IndexInfo, TableInfo
from repro.optimizer.join_order import JoinEnumerator, SubPlan
from repro.optimizer.plans import (
    AggregatePlan,
    DistinctPlan,
    FilterPlan,
    HashJoinPlan,
    LeftOuterJoinPlan,
    LimitPlan,
    NestedLoopJoinPlan,
    PlanNode,
    ProjectPlan,
    SortPlan,
)
from repro.optimizer.predicates import (
    BindingResolver,
    classify_conjuncts,
    conjoin,
    split_conjuncts,
)
from repro.optimizer.selectivity import SelectivityEstimator
from repro.sql import ast_nodes as ast


@dataclass
class OptimizationResult:
    """The plan plus everything the monitor wants to log about it."""

    plan: PlanNode
    output_names: tuple[str, ...]
    estimated_cost: Cost
    estimated_rows: float
    bindings: dict[str, str] = field(default_factory=dict)
    """binding -> table name."""
    referenced_tables: tuple[str, ...] = ()
    referenced_columns: tuple[tuple[str, str], ...] = ()
    """(table name, column name) pairs actually referenced."""
    available_indexes: tuple[str, ...] = ()
    used_indexes: tuple[str, ...] = ()
    uses_virtual: bool = False

    def explain(self) -> str:
        return self.plan.explain()


class Optimizer:
    """Cost-based optimizer over a :class:`CatalogView`."""

    def __init__(self, view: CatalogView,
                 config: EngineConfig | None = None) -> None:
        self._view = view
        self.config = config or EngineConfig()
        self.cost_model = CostModel(self.config.cost_model)
        self.estimator = SelectivityEstimator(self.config.cost_model)
        self._paths = AccessPathSelector(self.cost_model, self.estimator)

    # -- entry point ---------------------------------------------------------

    def optimize_select(self, stmt: ast.SelectStatement,
                        include_virtual: bool = False) -> OptimizationResult:
        if stmt.from_table is None:
            return self._constant_select(stmt)
        bindings = self._collect_bindings(stmt)
        tables = {b: self._view.table_info(t) for b, t in bindings.items()}
        indexes = {
            b: self._view.indexes_on(t, include_virtual=include_virtual)
            for b, t in bindings.items()
        }
        resolver = BindingResolver({
            b: info.schema.column_names for b, info in tables.items()
        })

        def column_stats(ref: ast.ColumnRef):
            info = tables.get(ref.table or "")
            if info is None or info.statistics is None:
                return None
            return info.statistics.column(ref.name)

        where_conjuncts = [resolver.qualify(c)
                           for c in split_conjuncts(stmt.where)]
        on_conjuncts: list[ast.Expression] = []
        for join in stmt.joins:
            if join.condition is not None:
                on_conjuncts.extend(
                    resolver.qualify(c)
                    for c in split_conjuncts(join.condition)
                )
        conjuncts = where_conjuncts + on_conjuncts
        row_bytes = sum(info.avg_row_bytes for info in tables.values())
        if any(join.kind == "left" for join in stmt.joins):
            # Outer joins pin the join order and WHERE placement: joins
            # run in FROM order and the WHERE filter applies after them
            # (SQL semantics for the NULL-padded side).
            plan = self._plan_with_outer_joins(stmt, bindings, tables,
                                               indexes, resolver,
                                               column_stats)
            plan = self._add_filter(plan, conjoin(where_conjuncts),
                                    column_stats)
        else:
            classified = classify_conjuncts(conjuncts)
            leaves = {
                binding: SubPlan(
                    self._paths.best_path(
                        binding, tables[binding], indexes[binding],
                        classified.per_binding.get(binding, []),
                        column_stats,
                    ),
                    frozenset((binding,)),
                )
                for binding in bindings
            }
            enumerator = JoinEnumerator(
                self.cost_model, self.estimator, tables, indexes,
                classified.per_binding, column_stats,
                self.config.join_dp_threshold,
            )
            joined = enumerator.enumerate(leaves, classified.edges)
            plan = joined.plan
            if classified.residual:
                plan = self._add_filter(plan, conjoin(classified.residual),
                                        column_stats)

        select_items = self._expand_select_items(stmt, resolver)
        qualified_items = [
            ast.SelectItem(resolver.qualify(item.expression), item.alias)
            for item in select_items
        ]
        group_exprs = tuple(resolver.qualify(e) for e in stmt.group_by)
        having = resolver.qualify(stmt.having) if stmt.having else None
        order_items = tuple(
            ast.OrderItem(self._resolve_order_expression(
                item.expression, qualified_items, resolver),
                item.descending)
            for item in stmt.order_by
        )

        aggregates = self._collect_aggregates(qualified_items, having,
                                              order_items)
        if aggregates or group_exprs:
            plan = self._add_aggregation(plan, group_exprs, aggregates,
                                         tables, column_stats)
            if having is not None:
                plan = self._add_filter(plan, having, column_stats)
            if order_items:
                plan = self._add_sort(plan, order_items, row_bytes)
            plan = self._add_project(plan, qualified_items)
        else:
            if order_items and not stmt.distinct:
                plan = self._add_sort(plan, order_items, row_bytes)
            plan = self._add_project(plan, qualified_items)
            if stmt.distinct:
                plan = self._add_distinct(plan)
                if order_items:
                    plan = self._add_sort(plan, order_items, row_bytes)
        if stmt.limit is not None or stmt.offset is not None:
            plan = self._add_limit(plan, stmt.limit, stmt.offset)

        output_names = tuple(
            item.output_name(i) for i, item in enumerate(qualified_items)
        )
        referenced = self._referenced_columns(bindings, conjuncts,
                                              qualified_items, group_exprs,
                                              having, order_items)
        return OptimizationResult(
            plan=plan,
            output_names=output_names,
            estimated_cost=Cost(plan.estimated_io_cost,
                                plan.estimated_cpu_cost),
            estimated_rows=plan.estimated_rows,
            bindings=bindings,
            referenced_tables=tuple(dict.fromkeys(bindings.values())),
            referenced_columns=referenced,
            available_indexes=tuple(
                info.definition.name
                for per_binding in indexes.values()
                for info in per_binding
            ),
            used_indexes=plan.used_indexes(),
            uses_virtual=plan.uses_virtual_index(),
        )

    # -- helpers ---------------------------------------------------------------

    def _constant_select(self, stmt: ast.SelectStatement) -> OptimizationResult:
        """SELECT without FROM: a one-row constant projection."""
        if any(isinstance(i.expression, ast.Star) for i in stmt.select_items):
            raise OptimizerError("SELECT * requires a FROM clause")
        names = tuple(item.output_name(i)
                      for i, item in enumerate(stmt.select_items))
        base = ProjectPlan(
            child=_EmptySourcePlan(),
            expressions=tuple(i.expression for i in stmt.select_items),
            names=names,
        )
        _finalize(base, 1.0, Cost())
        plan: PlanNode = base
        if stmt.limit is not None or stmt.offset is not None:
            plan = self._add_limit(plan, stmt.limit, stmt.offset)
        return OptimizationResult(
            plan=plan,
            output_names=names,
            estimated_cost=Cost(),
            estimated_rows=1.0,
        )

    def _collect_bindings(self, stmt: ast.SelectStatement) -> dict[str, str]:
        bindings: dict[str, str] = {}
        refs = [stmt.from_table] + [j.right for j in stmt.joins]
        for ref in refs:
            if ref.binding in bindings:
                raise OptimizerError(
                    f"duplicate table binding {ref.binding!r}; use aliases"
                )
            bindings[ref.binding] = ref.table_name
        return bindings

    def _expand_select_items(self, stmt: ast.SelectStatement,
                             resolver: BindingResolver) -> list[ast.SelectItem]:
        items: list[ast.SelectItem] = []
        for item in stmt.select_items:
            expr = item.expression
            if isinstance(expr, ast.Star):
                targets = ((expr.table,) if expr.table
                           else resolver.bindings)
                for binding in targets:
                    if binding not in resolver.bindings:
                        raise OptimizerError(
                            f"unknown table binding {binding!r} in select list"
                        )
                    for column in resolver.columns_of(binding):
                        items.append(ast.SelectItem(
                            ast.ColumnRef(column, table=binding)))
            else:
                items.append(item)
        return items

    def _resolve_order_expression(self, expr: ast.Expression,
                                  select_items: list[ast.SelectItem],
                                  resolver: BindingResolver) -> ast.Expression:
        """ORDER BY may name a select alias or any source expression."""
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            for item in select_items:
                if item.alias == expr.name:
                    return item.expression
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            ordinal = expr.value
            if not 1 <= ordinal <= len(select_items):
                raise OptimizerError(
                    f"ORDER BY position {ordinal} is out of range")
            return select_items[ordinal - 1].expression
        return resolver.qualify(expr)

    @staticmethod
    def _collect_aggregates(select_items: list[ast.SelectItem],
                            having: ast.Expression | None,
                            order_items: tuple[ast.OrderItem, ...],
                            ) -> tuple[ast.FunctionCall, ...]:
        seen: dict[str, ast.FunctionCall] = {}
        sources = [i.expression for i in select_items]
        if having is not None:
            sources.append(having)
        sources.extend(i.expression for i in order_items)
        for source in sources:
            for node in ast.walk_expression(source):
                if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                    seen.setdefault(node.to_sql(), node)
        return tuple(seen.values())

    # -- outer-join planning ------------------------------------------------------

    def _plan_with_outer_joins(self, stmt: ast.SelectStatement,
                               bindings: dict[str, str],
                               tables: dict[str, TableInfo],
                               indexes, resolver, resolve) -> PlanNode:
        """Left-deep, FROM-order join tree for queries with LEFT JOINs.

        Predicates are not pushed into the scans (WHERE is applied by
        the caller after the join tree), so every leaf is a plain
        cheapest-path scan without filters."""
        first = stmt.from_table.binding
        plan = self._paths.best_path(first, tables[first], indexes[first],
                                     [], resolve)
        covered = [first]
        for join in stmt.joins:
            binding = join.right.binding
            right = self._paths.best_path(binding, tables[binding],
                                          indexes[binding], [], resolve)
            condition = (resolver.qualify(join.condition)
                         if join.condition is not None else None)
            left_keys, right_keys, residual = self._split_equi_condition(
                condition, set(covered), binding)
            edge_selectivity = 0.1 if condition is not None else 1.0
            inner_rows = max(1.0, plan.estimated_rows
                             * right.estimated_rows * edge_selectivity)
            if join.kind == "left":
                out_rows = max(plan.estimated_rows, inner_rows)
                joined = LeftOuterJoinPlan(
                    left=plan, right=right,
                    condition=None if left_keys else condition,
                    left_keys=left_keys, right_keys=right_keys,
                    residual=residual if left_keys else None,
                )
                cost = (self._cumulative(plan) + self._cumulative(right)
                        + self.cost_model.hash_join(right.estimated_rows,
                                                    plan.estimated_rows))
            elif left_keys:
                joined = HashJoinPlan(
                    left=plan, right=right,
                    left_keys=left_keys, right_keys=right_keys,
                    residual=residual,
                )
                out_rows = inner_rows
                cost = (self._cumulative(plan) + self._cumulative(right)
                        + self.cost_model.hash_join(right.estimated_rows,
                                                    plan.estimated_rows))
            else:
                joined = NestedLoopJoinPlan(left=plan, right=right,
                                            condition=condition)
                out_rows = inner_rows if condition is not None else max(
                    1.0, plan.estimated_rows * right.estimated_rows)
                cost = (self._cumulative(plan) + self._cumulative(right)
                        + self.cost_model.nested_loop_join(
                            plan.estimated_rows, right.estimated_rows,
                            Cost()))
            _finalize(joined, out_rows, cost)
            plan = joined
            covered.append(binding)
        return plan

    @staticmethod
    def _split_equi_condition(condition: ast.Expression | None,
                              left_bindings: set[str], right_binding: str):
        """Split an ON condition into hash-join keys plus a residual."""
        if condition is None:
            return (), (), None
        left_keys: list[ast.Expression] = []
        right_keys: list[ast.Expression] = []
        residual: list[ast.Expression] = []
        for conjunct in split_conjuncts(condition):
            if (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="
                    and isinstance(conjunct.left, ast.ColumnRef)
                    and isinstance(conjunct.right, ast.ColumnRef)):
                sides = {conjunct.left.table, conjunct.right.table}
                if (conjunct.left.table in left_bindings
                        and conjunct.right.table == right_binding):
                    left_keys.append(conjunct.left)
                    right_keys.append(conjunct.right)
                    continue
                if (conjunct.right.table in left_bindings
                        and conjunct.left.table == right_binding):
                    left_keys.append(conjunct.right)
                    right_keys.append(conjunct.left)
                    continue
            residual.append(conjunct)
        if not left_keys:
            return (), (), condition
        return tuple(left_keys), tuple(right_keys), conjoin(residual)

    # -- operator layering -------------------------------------------------------

    def _add_filter(self, child: PlanNode, condition: ast.Expression | None,
                    resolve) -> PlanNode:
        if condition is None:
            return child
        selectivity = self.estimator.selectivity(condition, resolve)
        plan = FilterPlan(child=child, condition=condition)
        cost = self._cumulative(child) + self.cost_model.filter(
            child.estimated_rows)
        _finalize(plan, child.estimated_rows * selectivity, cost)
        return plan

    def _add_aggregation(self, child: PlanNode,
                         group_exprs: tuple[ast.Expression, ...],
                         aggregates: tuple[ast.FunctionCall, ...],
                         tables: dict[str, TableInfo],
                         resolve) -> PlanNode:
        groups = 1.0
        for expr in group_exprs:
            ndv = 10.0
            if isinstance(expr, ast.ColumnRef):
                stats = resolve(expr)
                if stats is not None and stats.n_distinct > 0:
                    ndv = float(stats.n_distinct)
            groups *= ndv
        groups = min(groups, max(1.0, child.estimated_rows))
        plan = AggregatePlan(child=child, group_expressions=group_exprs,
                             aggregates=aggregates)
        cost = self._cumulative(child) + self.cost_model.aggregate(
            child.estimated_rows, groups)
        _finalize(plan, groups, cost)
        return plan

    def _add_sort(self, child: PlanNode,
                  order_items: tuple[ast.OrderItem, ...],
                  row_bytes: float) -> PlanNode:
        pages = max(1.0, child.estimated_rows * row_bytes
                    / self.config.storage.page_size)
        plan = SortPlan(
            child=child,
            sort_keys=tuple((i.expression, i.descending)
                            for i in order_items),
        )
        cost = self._cumulative(child) + self.cost_model.sort(
            child.estimated_rows, pages)
        _finalize(plan, child.estimated_rows, cost)
        return plan

    def _add_distinct(self, child: PlanNode) -> PlanNode:
        plan = DistinctPlan(child=child)
        cost = self._cumulative(child) + self.cost_model.aggregate(
            child.estimated_rows, child.estimated_rows)
        _finalize(plan, child.estimated_rows, cost)
        return plan

    def _add_project(self, child: PlanNode,
                     select_items: list[ast.SelectItem]) -> PlanNode:
        names = tuple(item.output_name(i)
                      for i, item in enumerate(select_items))
        plan = ProjectPlan(
            child=child,
            expressions=tuple(i.expression for i in select_items),
            names=names,
        )
        cost = self._cumulative(child) + self.cost_model.project(
            child.estimated_rows, len(select_items))
        _finalize(plan, child.estimated_rows, cost)
        return plan

    def _add_limit(self, child: PlanNode, limit: int | None,
                   offset: int | None) -> PlanNode:
        plan = LimitPlan(child=child, limit=limit, offset=offset)
        rows = child.estimated_rows
        if offset:
            rows = max(0.0, rows - offset)
        if limit is not None:
            rows = min(rows, float(limit))
        _finalize(plan, rows, self._cumulative(child))
        return plan

    @staticmethod
    def _cumulative(child: PlanNode) -> Cost:
        return Cost(child.estimated_io_cost, child.estimated_cpu_cost)

    @staticmethod
    def _referenced_columns(bindings: dict[str, str],
                            conjuncts: list[ast.Expression],
                            select_items: list[ast.SelectItem],
                            group_exprs: tuple[ast.Expression, ...],
                            having: ast.Expression | None,
                            order_items: tuple[ast.OrderItem, ...],
                            ) -> tuple[tuple[str, str], ...]:
        sources: list[ast.Expression] = list(conjuncts)
        sources.extend(i.expression for i in select_items)
        sources.extend(group_exprs)
        if having is not None:
            sources.append(having)
        sources.extend(i.expression for i in order_items)
        seen: dict[tuple[str, str], None] = {}
        for source in sources:
            for ref in ast.referenced_columns(source):
                if ref.table in bindings:
                    seen[(bindings[ref.table], ref.name)] = None
        return tuple(seen)


@dataclass
class _EmptySourcePlan(PlanNode):
    """A one-row, zero-column source for FROM-less SELECTs."""

    @property
    def scope(self):
        return ()

    def node_label(self) -> str:
        return "SingleRow"
