"""What-if analysis: feed the optimizer hypothetical (virtual) indexes.

As in the AutoAdmin what-if utility the paper cites [14], a virtual
index exists only in the catalog: the optimizer costs it like a real
index (its geometry is synthesized from table statistics), and whether
the optimizer *chooses* it for a statement is the advisor's signal that
the index would actually be used — requirement ii of the paper's
concept: all cost-based decisions use the DBMS' own cost model.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.catalog.schema import IndexDef
from repro.config import EngineConfig
from repro.optimizer.optimizer import OptimizationResult, Optimizer
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.database import Database


@dataclass(frozen=True)
class WhatIfOutcome:
    """Result of optimizing one statement with hypothetical indexes."""

    baseline: OptimizationResult
    hypothetical: OptimizationResult

    @property
    def baseline_cost(self) -> float:
        return self.baseline.estimated_cost.total

    @property
    def hypothetical_cost(self) -> float:
        return self.hypothetical.estimated_cost.total

    @property
    def benefit(self) -> float:
        """Estimated cost reduction (>= 0)."""
        return max(0.0, self.baseline_cost - self.hypothetical_cost)

    @property
    def virtual_indexes_used(self) -> tuple[str, ...]:
        """Virtual indexes the optimizer actually chose."""
        if not self.hypothetical.uses_virtual:
            return ()
        real = set(self.baseline.used_indexes)
        return tuple(name for name in self.hypothetical.used_indexes
                     if name not in real)


@contextmanager
def hypothetical_indexes(database: "Database",
                         definitions: list[IndexDef]) -> Iterator[list[IndexDef]]:
    """Temporarily register virtual indexes in the catalog."""
    created: list[IndexDef] = []
    try:
        for definition in definitions:
            if not definition.virtual:
                raise ValueError(
                    f"hypothetical index {definition.name!r} must be virtual")
            if not database.catalog.has_index(definition.name):
                database.create_index(definition)
                created.append(definition)
        yield created
    finally:
        for definition in created:
            database.drop_index(definition.name)


def what_if_optimize(database: "Database", statement_text: str,
                     candidates: list[IndexDef],
                     config: EngineConfig | None = None) -> WhatIfOutcome:
    """Optimize a SELECT with and without ``candidates`` available."""
    statement = parse_statement(statement_text)
    if not isinstance(statement, ast.SelectStatement):
        raise ValueError("what-if analysis applies to SELECT statements")
    optimizer = Optimizer(database, config or database.config)
    baseline = optimizer.optimize_select(statement, include_virtual=False)
    with hypothetical_indexes(database, candidates):
        hypothetical = optimizer.optimize_select(statement,
                                                 include_virtual=True)
    return WhatIfOutcome(baseline=baseline, hypothetical=hypothetical)
