"""Exception hierarchy shared by all repro subsystems.

Every error raised by the library derives from :class:`ReproError` so
applications can catch a single base class.  The subclasses mirror the
major subsystems: SQL front-end, catalog, storage, optimizer, executor
and the engine shell.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexerError(SqlError):
    """Raised when the tokenizer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the tokens."""


class CatalogError(ReproError):
    """Base class for catalog errors."""


class DuplicateObjectError(CatalogError):
    """Raised when creating a table/index whose name already exists."""


class UnknownObjectError(CatalogError):
    """Raised when referencing a table, column or index that does not exist."""


class StorageError(ReproError):
    """Base class for storage engine errors."""


class PageError(StorageError):
    """Raised on invalid page operations (overflow, bad slot, ...)."""


class BufferPoolError(StorageError):
    """Raised when the buffer pool cannot satisfy a request."""


class OptimizerError(ReproError):
    """Raised when no executable plan can be produced for a statement."""


class ExecutionError(ReproError):
    """Raised by the executor when a plan cannot be evaluated."""


class TypeMismatchError(ExecutionError):
    """Raised when a value does not match the declared column type."""


class LockError(ReproError):
    """Base class for lock manager errors."""


class DeadlockError(LockError):
    """Raised for the victim transaction of a detected deadlock."""


class LockTimeoutError(LockError):
    """Raised when a lock request waits longer than the configured timeout."""


class TransactionError(ReproError):
    """Raised on invalid transaction state transitions."""


class MonitorError(ReproError):
    """Raised by the monitoring subsystem (IMA, daemon, workload DB)."""


class FaultError(ReproError):
    """Raised by :mod:`repro.faultsim` for invalid arming/spec requests."""


class InjectedFault(ReproError):
    """Default error raised by an armed :mod:`repro.faultsim` point."""


class AnalyzerError(ReproError):
    """Raised by the analyzer when recommendations cannot be computed."""
