"""Ablation — the monitor's statement cache.

Section V-A closes with: "we believe that by adding a better caching
strategy to the monitoring code, we are able to further reduce this
overhead ... so that the monitoring scales better when dealing with
most simple queries".  We implemented that strategy
(``MonitorConfig.statement_cache_enabled``: reference extraction is
skipped for statement hashes already in the buffer); this ablation
measures what it buys on the paper's 1m-style workload.
"""

from __future__ import annotations

import pytest

from repro.config import EngineConfig, MonitorConfig
from repro.core.monitor import IntegratedMonitor, MonitorSensors
from repro.engine import EngineInstance
from repro.workloads import WorkloadRunner, load_nref, point_query_statements

from conftest import BENCH_SCALE, format_table, write_result

STATEMENTS = point_query_statements(6000, BENCH_SCALE, distinct_ids=50)


def run(cache_enabled: bool) -> tuple[float, float, int]:
    """Returns (monitor seconds total, avg per sensor call, calls)."""
    config = EngineConfig(
        monitor=MonitorConfig(statement_cache_enabled=cache_enabled))
    engine = EngineInstance(config)
    monitor = IntegratedMonitor(config.monitor, engine.clock)
    engine.sensors = MonitorSensors(monitor)
    engine.create_database("nref")
    load_nref(engine.database("nref"), BENCH_SCALE)
    session = engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(STATEMENTS[:100])  # warmup
    monitor.reset_counters()
    runner.run(STATEMENTS)
    return (monitor.sensor_time_s, monitor.average_sensor_call_s,
            monitor.sensor_calls)


def test_ablation_statement_cache(benchmark):
    with_cache = benchmark.pedantic(run, args=(True,),
                                    rounds=1, iterations=1)
    without_cache = run(False)

    per_statement_with = with_cache[0] / len(STATEMENTS) * 1e6
    per_statement_without = without_cache[0] / len(STATEMENTS) * 1e6
    table = format_table(
        ["configuration", "monitor time", "per statement", "per call"],
        [
            ["cache enabled", f"{with_cache[0] * 1e3:.1f}ms",
             f"{per_statement_with:.1f}us",
             f"{with_cache[1] * 1e6:.2f}us"],
            ["cache disabled", f"{without_cache[0] * 1e3:.1f}ms",
             f"{per_statement_without:.1f}us",
             f"{without_cache[1] * 1e6:.2f}us"],
        ],
    )
    ratio = per_statement_without / max(per_statement_with, 1e-9)
    write_result("ablation_monitor_cache", table + (
        f"\nreduction factor: {ratio:.2f}x"
        "\npaper (section V-A): a better caching strategy should reduce "
        "the per-statement monitoring overhead for simple repeated "
        "queries"))

    # The cache must reduce per-statement monitoring time on a
    # repeated-statement flood (the workload it was designed for).
    assert per_statement_with < per_statement_without
    # And it must not lose data: both configurations saw every execution.
    assert with_cache[2] > 0 and without_cache[2] > 0
