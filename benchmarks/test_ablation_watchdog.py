"""Ablation — integrated sensors vs. the external watchdog baseline.

The paper's core design argument (sections I/IV): an in-core monitor
achieves *high data resolution* at *minimal overhead*, whereas a
watchdog sitting on top of the DBMS both loads the server with its own
queries and cannot see individual statements at all.  This ablation
quantifies the two axes on the same foreground workload.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.watchdog import WatchdogMonitor
from repro.setups import monitoring_setup, original_setup
from repro.workloads import (
    WorkloadRunner,
    load_nref,
    simple_join_statements,
)

from conftest import BENCH_SCALE, format_table, write_result

FOREGROUND = simple_join_statements(1500, BENCH_SCALE)
WATCHDOG_INTERVAL = 0.2


def run_with_integrated_monitor():
    setup = monitoring_setup()
    setup.engine.create_database("nref")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(FOREGROUND[:50])  # warmup
    report = runner.run(FOREGROUND)
    distinct_captured = len(setup.monitor.statements)
    executions = setup.monitor.workload.total_appended
    return report.total_wallclock_s, distinct_captured, executions


def run_with_watchdog():
    setup = original_setup()
    setup.engine.create_database("nref")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(FOREGROUND[:50])  # warmup
    watchdog = WatchdogMonitor(setup.engine, "nref",
                               sample_tables=("protein", "sequence"))
    stop = threading.Event()

    def poll_loop():
        while not stop.is_set():
            watchdog.poll_once()
            time.sleep(WATCHDOG_INTERVAL)

    thread = threading.Thread(target=poll_loop)
    thread.start()
    try:
        report = runner.run(FOREGROUND)
    finally:
        stop.set()
        thread.join()
        watchdog.close()
    return (report.total_wallclock_s,
            watchdog.report.statements_captured,
            len(watchdog.report.samples),
            watchdog.report.queries_issued)


def run_unmonitored():
    setup = original_setup()
    setup.engine.create_database("nref")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(FOREGROUND[:50])  # warmup
    return runner.run(FOREGROUND).total_wallclock_s


def test_ablation_watchdog_vs_integrated(benchmark):
    base_s = run_unmonitored()
    integrated_s, distinct, executions = benchmark.pedantic(
        run_with_integrated_monitor, rounds=1, iterations=1)
    watchdog_s, wd_statements, wd_samples, wd_queries = run_with_watchdog()

    table = format_table(
        ["approach", "runtime", "relative", "stmts captured",
         "executions logged"],
        [
            ["unmonitored", f"{base_s:.2f}s", "100%", "-", "-"],
            ["integrated", f"{integrated_s:.2f}s",
             f"{integrated_s / base_s * 100:.0f}%",
             str(distinct), str(executions)],
            ["watchdog", f"{watchdog_s:.2f}s",
             f"{watchdog_s / base_s * 100:.0f}%",
             str(wd_statements),
             f"({wd_samples} samples, {wd_queries} probe queries)"],
        ],
    )
    write_result("ablation_watchdog", table + (
        "\npaper's argument: in-core integration gives statement-level "
        "resolution at minimal overhead; a watchdog sees no statements "
        "and its probes are real server load"))

    # Shape assertions.
    # 1) the integrated monitor captured (nearly) every distinct
    #    statement the window could hold.
    assert distinct >= min(len(set(FOREGROUND)),
                           1000) * 0.95
    assert executions >= len(FOREGROUND)
    # 2) the watchdog captured no statements at all — the resolution gap.
    assert wd_statements == 0
    # 3) the watchdog's own probes put real query load on the server.
    assert wd_queries > 0
    # 4) integrated monitoring stays cheap on this workload.
    assert integrated_s < base_s * 1.35
