"""Subprocess driver for the figure-4 measurements.

Each (setup, workload) cell runs in a fresh Python process so that one
measurement's heap growth, GC state or warmed caches cannot bleed into
another — the comparison is engine-build vs. engine-build, nothing else.

Usage: ``python fig4_driver.py <original|monitoring|daemon> <50|50k|1m>``
Prints a JSON object with the measured wall-clock seconds.
"""

from __future__ import annotations

import json
import sys

from repro.config import DaemonConfig
from repro.setups import daemon_setup, monitoring_setup, original_setup
from repro.workloads import (
    WorkloadRunner,
    complex_query_set,
    load_nref,
    point_query_statements,
    simple_join_statements,
)

from conftest import (
    BENCH_SCALE,
    COMPLEX_COUNT,
    POINT_QUERY_COUNT,
    SIMPLE_JOIN_COUNT,
)

WORKLOADS = {
    "50": lambda: complex_query_set(BENCH_SCALE, count=COMPLEX_COUNT),
    "50k": lambda: simple_join_statements(SIMPLE_JOIN_COUNT, BENCH_SCALE),
    "1m": lambda: point_query_statements(POINT_QUERY_COUNT, BENCH_SCALE),
}


def build_setup(kind: str):
    if kind == "original":
        setup = original_setup()
        setup.engine.create_database("nref")
    elif kind == "monitoring":
        setup = monitoring_setup()
        setup.engine.create_database("nref")
    elif kind == "daemon":
        # The paper polls every 30 s during multi-minute runs; with runs
        # that last seconds, 0.5 s keeps the polls-per-run ratio similar.
        setup = daemon_setup(
            "nref",
            daemon_config=DaemonConfig(poll_interval_s=0.5,
                                       flush_every_polls=4),
        )
    else:
        raise SystemExit(f"unknown setup kind {kind!r}")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    return setup


def measure(kind: str, workload: str, repeats: int = 2) -> float:
    setup = build_setup(kind)
    statements = WORKLOADS[workload]()
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(statements[: max(1, len(statements) // 20)])  # warmup
    best = float("inf")
    for _attempt in range(repeats):
        if setup.daemon is not None:
            setup.daemon.start()
        try:
            elapsed = runner.run(statements).total_wallclock_s
        finally:
            if setup.daemon is not None:
                setup.daemon.stop()
        best = min(best, elapsed)
    session.close()
    return best


def main() -> None:
    kind, workload = sys.argv[1], sys.argv[2]
    seconds = measure(kind, workload)
    print(json.dumps({"setup": kind, "workload": workload,
                      "seconds": seconds}))


if __name__ == "__main__":
    main()
