"""Figure 7 — Analyser Results: the paper's headline experiment.

Three configurations of the NREF database run the 50-query workload:

* **Unoptimised** — heaps, no statistics, no secondary indexes.
* **Manually** — the DBA baseline: every table MODIFYed to B-Tree,
  statistics on everything, the 33-index reference set.
* **Analyser** — the recommendations the analyzer derived from the
  recorded workload.

Paper result: manual optimization cuts runtime to ~60 % and grows the
database 33 GB -> 65 GB; the analyzer reaches ~62 % runtime with only
12 recommended indexes and a database of 53 GB — comparable speed,
~12 GB less disk.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import Analyzer, apply_recommendations
from repro.core.analyzer.recommendations import RecommendationKind
from repro.setups import daemon_setup, original_setup
from repro.workloads import (
    NREF_TABLE_NAMES,
    WorkloadRunner,
    complex_query_set,
    load_nref,
    reference_indexes,
)

from conftest import BENCH_SCALE, COMPLEX_COUNT, format_table, write_result

QUERIES = complex_query_set(BENCH_SCALE, count=COMPLEX_COUNT)
REPEATS = 3


def run_workload(session) -> float:
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(QUERIES[:5])  # warmup
    return min(runner.run(QUERIES).total_wallclock_s
               for _ in range(REPEATS))


def rows_returned(session) -> int:
    runner = WorkloadRunner(session, keep_per_statement=False)
    return runner.run(QUERIES).rows_returned


@pytest.fixture(scope="module")
def results():
    outcome: dict[str, dict] = {}

    # -- Unoptimised -----------------------------------------------------
    setup = original_setup()
    db = setup.engine.create_database("nref")
    load_nref(db, BENCH_SCALE)
    session = setup.engine.connect("nref")
    outcome["unoptimised"] = {
        "runtime": run_workload(session),
        "bytes": db.total_bytes,
        "indexes": 0,
        "rows": rows_returned(session),
    }

    # -- Manual (reference) optimization -----------------------------------
    setup = original_setup()
    db = setup.engine.create_database("nref")
    load_nref(db, BENCH_SCALE)
    session = setup.engine.connect("nref")
    for table in NREF_TABLE_NAMES:
        session.execute(f"modify {table} to btree")
    for index in reference_indexes():
        db.create_index(index)
    for table in NREF_TABLE_NAMES:
        session.execute(f"create statistics on {table}")
    outcome["manual"] = {
        "runtime": run_workload(session),
        "bytes": db.total_bytes,
        "indexes": len(reference_indexes()),
        "rows": rows_returned(session),
    }

    # -- Analyzer-driven optimization ----------------------------------------
    setup = daemon_setup("nref")
    db = setup.engine.database("nref")
    load_nref(db, BENCH_SCALE)
    session = setup.engine.connect("nref")
    WorkloadRunner(session, keep_per_statement=False).run(QUERIES)
    setup.daemon.poll_once()
    setup.daemon.flush()
    report = Analyzer(db).analyze_workload_db(setup.workload_db)
    applied = apply_recommendations(session, report.recommendations)
    index_count = sum(
        1 for a in applied
        if a.succeeded
        and a.recommendation.kind is RecommendationKind.CREATE_INDEX)
    outcome["analyser"] = {
        "runtime": run_workload(session),
        "bytes": db.total_bytes,
        "indexes": index_count,
        "rows": rows_returned(session),
        "failed": [a.sql for a in applied if not a.succeeded],
    }
    return outcome


def test_fig7_analyser_results(results, benchmark):
    benchmark.pedantic(lambda: results, rounds=1, iterations=1)
    base = results["unoptimised"]
    rows = []
    for name in ("unoptimised", "manual", "analyser"):
        entry = results[name]
        rows.append([
            name,
            f"{entry['runtime']:.2f}s",
            f"{entry['runtime'] / base['runtime'] * 100:.0f}%",
            f"{entry['bytes'] / 1e6:.1f}MB",
            str(entry["indexes"]),
        ])
    table = format_table(
        ["configuration", "runtime", "relative", "db size", "indexes"],
        rows)
    table += ("\npaper: unoptimised 100%/33GB/0; manual ~60%/65GB/33; "
              "analyser ~62%/53GB/12")
    write_result("fig7_analyser_results", table)

    manual = results["manual"]
    analyser = results["analyser"]
    # 0) every recommendation applied cleanly.
    assert not analyser["failed"], analyser["failed"]
    # 1) correctness: all three configurations return identical volumes.
    assert base["rows"] == manual["rows"] == analyser["rows"]
    # 2) both optimizations beat the unoptimized database clearly.
    assert manual["runtime"] < base["runtime"] * 0.9
    assert analyser["runtime"] < base["runtime"] * 0.9
    # 3) the analyzer's performance is comparable to the manual DBA's
    #    (paper: 62% vs 60%; allow slack for wall-clock noise).
    assert analyser["runtime"] < manual["runtime"] * 1.4
    # 4) the analyzer recommends far fewer indexes than the reference
    #    set (paper: 12 vs 33) ...
    assert 0 < analyser["indexes"] < manual["indexes"]
    # 5) ... and therefore needs less disk than the manual configuration.
    assert analyser["bytes"] < manual["bytes"]
    # 6) both grow the database relative to unoptimized (indexes + B-Trees).
    assert manual["bytes"] > base["bytes"]
