"""Figure 6 — Cost Diagram: actual vs. estimated vs. virtual-index cost.

Paper result: for the ten most expensive statements of the recorded
50-query workload, the analyzer plots actual cost, the optimizer's
estimate, and the estimate assuming the recommended (still virtual)
indexes.  Some statements benefit visibly from virtual indexes; others
(Q2/Q4/Q7 in the paper) show large actual-vs-estimate divergence, for
which statistics collection is recommended (31 of the 50 statements in
the paper's run).
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import Analyzer
from repro.setups import daemon_setup
from repro.workloads import WorkloadRunner, complex_query_set, load_nref

from conftest import BENCH_SCALE, COMPLEX_COUNT, format_table, write_result


@pytest.fixture(scope="module")
def analysis():
    setup = daemon_setup("nref")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    runner.run(complex_query_set(BENCH_SCALE, count=COMPLEX_COUNT))
    setup.daemon.poll_once()
    setup.daemon.flush()
    analyzer = Analyzer(setup.engine.database("nref"))
    return analyzer.analyze_workload_db(setup.workload_db)


def test_fig6_cost_diagram(analysis, benchmark):
    diagram = benchmark.pedantic(
        lambda: analysis.cost_diagram, rounds=1, iterations=1)

    rows = []
    for entry in diagram.entries:
        rows.append([
            entry.label,
            f"{entry.actual_cost:10.1f}",
            f"{entry.estimated_cost:10.1f}",
            f"{entry.virtual_estimated_cost:10.1f}",
            "yes" if entry.divergent else "",
        ])
    table = format_table(
        ["stmt", "actual", "estimated", "w/ virtual idx", "divergent"],
        rows)
    table += ("\n\n" + diagram.render()
              + "\npaper: 10 bars; some improve with virtual indexes; "
                "Q2/Q4/Q7-style statements diverge -> collect statistics")
    write_result("fig6_cost_diagram", table)

    # Shape assertions.
    entries = diagram.entries
    # 1) the diagram covers the top-10 statements.
    assert len(entries) == 10
    # 2) bars are ordered by actual cost (most expensive first).
    costs = [e.actual_cost for e in entries]
    assert costs == sorted(costs, reverse=True)
    # 3) at least one statement benefits from virtual indexes...
    assert any(e.virtual_estimated_cost < e.estimated_cost * 0.95
               for e in entries)
    # 4) ...and, as in the paper's unoptimized run, several statements
    #    show significant actual-vs-estimated divergence.
    assert sum(1 for e in entries if e.divergent) >= 2


def test_fig6_divergent_statements_trigger_statistics(analysis, benchmark):
    findings = benchmark.pedantic(lambda: analysis.findings,
                                  rounds=1, iterations=1)
    # paper: "for 31 statements the analyzer reported that estimated
    # cost values differ significantly ... and suggested to collect
    # statistics" — a majority of the workload, not a corner case.
    assert len(findings.divergent_statements) >= 5
    assert findings.tables_needing_statistics
    # all six tables had overflow problems in the paper's run
    assert len(findings.overflow_tables) >= 3
