"""Shared benchmark infrastructure.

Each ``test_fig*.py`` regenerates one figure of the paper's evaluation
(section V) at a reduced scale and writes the series it measured to
``benchmarks/results/<name>.txt`` (absolute numbers will differ from
the paper — the substrate is a simulator — but the *shape* assertions
in each benchmark check that the paper's qualitative findings hold).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.workloads import NrefScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scale of the synthetic NREF database used by the benchmarks.  The
#: paper's NREF has ~100M rows / 6.5 GB; this keeps the same shape at
#: laptop scale.
BENCH_SCALE = NrefScale(proteins=2000)

#: Statement counts for the three workload classes (paper: 50 / 50,000 /
#: 1,000,000) scaled down proportionally.
COMPLEX_COUNT = 50
SIMPLE_JOIN_COUNT = 2000
POINT_QUERY_COUNT = 8000


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a rendered result table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Render an aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


@pytest.fixture(scope="session")
def bench_scale() -> NrefScale:
    return BENCH_SCALE
