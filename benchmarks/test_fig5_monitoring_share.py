"""Figure 5 — Share of Monitoring in total statement time.

Paper result: for the 50 complex queries the monitoring share is
negligible; for the 1m trivial statement the first (cold) execution has
a tiny share, and as the DBMS caches make execution nearly free the
share climbs to ~90 % by the 1000th and ~98 % by the 100,000th
repetition, because monitoring time stays constant while execution
time collapses.

Reproduced shape: the share is (a) far smaller for complex queries than
for trivial repeated ones, and (b) grows from the cold first execution
to the warm steady state.  The absolute ~98 % is out of reach here —
the substrate's per-statement baseline (Python parse/optimize) is
orders of magnitude heavier than compiled Ingres — which is exactly the
"lower boundary of execution time" effect the paper describes, just
with a different constant.  See EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.setups import monitoring_setup
from repro.workloads import WorkloadRunner, complex_query_set, load_nref
from repro.workloads.nref import nref_id

from conftest import BENCH_SCALE, format_table, write_result

TRIVIAL = f"select p.nref_id from protein p where p.nref_id = '{nref_id(7)}'"
REPEATS = 4000
CHECKPOINTS = (1, 2, 10, 100, 1000, REPEATS)


@pytest.fixture(scope="module")
def setup():
    setup = monitoring_setup()
    setup.engine.create_database("nref")
    load_nref(setup.engine.database("nref"), BENCH_SCALE)
    # The paper's base configuration uses primary keys: give protein a
    # keyed structure so the trivial point query is a keyed lookup.
    session = setup.engine.connect("nref")
    session.execute("modify protein to btree")
    session.close()
    return setup


def monitor_share(record) -> float:
    if record.wallclock_s <= 0:
        return 0.0
    return record.monitor_time_s / record.wallclock_s


def test_fig5_monitoring_share(setup, benchmark):
    session = setup.engine.connect("nref")
    monitor = setup.monitor

    # Part 1: the first five complex queries.
    complex_rows = []
    for i, query in enumerate(complex_query_set(BENCH_SCALE, count=5),
                              start=1):
        session.execute(query)
        record = list(monitor.workload.values())[-1]
        complex_rows.append(
            [f"Q{i}", f"{record.wallclock_s * 1e3:8.2f}ms",
             f"{record.monitor_time_s * 1e6:8.1f}us",
             f"{monitor_share(record) * 100:6.2f}%"])
    complex_shares = [
        float(row[3].rstrip("%")) / 100 for row in complex_rows]

    # Part 2: the trivial statement repeated REPEATS times.  The first
    # execution runs against a cold cache ("the DBMS needs to initialize
    # its caches and read catalog information from disk"), so its share
    # of monitoring is small; caching then collapses execution time
    # while monitoring stays constant.
    setup.engine.database("nref").pool.clear()
    shares_at: dict[int, float] = {}
    runner = WorkloadRunner(session, keep_per_statement=False)

    def run_trivia():
        for i in range(1, REPEATS + 1):
            session.execute(TRIVIAL)
            if i in CHECKPOINTS:
                record = list(monitor.workload.values())[-1]
                shares_at[i] = monitor_share(record)

    benchmark.pedantic(run_trivia, rounds=1, iterations=1)

    trivial_rows = [
        [f"execution #{i}", f"{shares_at[i] * 100:6.2f}%"]
        for i in CHECKPOINTS
    ]
    table = (
        "first five complex queries (share of monitoring):\n"
        + format_table(["query", "wallclock", "monitor", "share"],
                       complex_rows)
        + "\n\nrepeated trivial statement (share of monitoring):\n"
        + format_table(["checkpoint", "share"], trivial_rows)
        + f"\n\navg sensor call: "
          f"{monitor.average_sensor_call_s * 1e6:.2f}us over "
          f"{monitor.sensor_calls} calls"
        + "\npaper: complex -> negligible; trivial -> ~90% at #1000, "
          "~98% at #100000"
    )
    write_result("fig5_monitoring_share", table)

    # Shape assertions.
    steady = shares_at[REPEATS]
    # 1) complex queries: monitoring share is negligible (paper: <<1 %).
    assert max(complex_shares) < 0.10
    # 2) trivial repeated statements have a much larger monitoring share
    #    than complex ones.
    assert steady > max(complex_shares)
    # 3) the share grows from the cold first execution (caches empty,
    #    catalog reads from disk) to the warm steady state.
    assert steady >= shares_at[1]
    # 4) monitoring time per statement is roughly constant: its absolute
    #    cost at steady state stays microseconds-scale.
    last = list(setup.monitor.workload.values())[-1]
    assert last.monitor_time_s < 1e-3
