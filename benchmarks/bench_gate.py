"""Standing benchmark gate — CI entry point.

The implementation moved to :mod:`repro.bench` (so the engine package
owns its own benchmark and ``repro bench`` can run it); this wrapper
keeps the historical invocation working unchanged::

    PYTHONPATH=src python benchmarks/bench_gate.py [--no-check|--update]
"""

from __future__ import annotations

from repro.bench import (  # noqa: F401
    CHUNK_STATEMENTS,
    CONCURRENCY_LIMIT_RATIO,
    CONCURRENCY_SESSIONS,
    DEFAULT_PROTEINS,
    DEFAULT_REPEATS,
    DEFAULT_STATEMENTS,
    HISTORY_LIMIT,
    REGRESSION_FLOOR_PCT,
    REGRESSION_TOLERANCE,
    REPO_ROOT,
    RESULT_PATH,
    _Bench,
    _build,
    _percentile,
    append_history,
    check_concurrency,
    check_regression,
    history_entry,
    main,
    run_concurrency,
    run_gate,
)

if __name__ == "__main__":
    raise SystemExit(main())
