"""Ablation — ring-buffer capacity vs. achieved data resolution.

Section V-A: "with over 1,000 statements per second, the default data
resolution of the monitoring of 33 statements per second has been
exceeded by far" — the daemon can persist at most
``buffer capacity / poll interval`` distinct executions per second; a
faster flood silently falls out of the moving window.

This ablation floods the monitor with distinct statements between two
daemon polls at several workload-buffer capacities and reports the
captured fraction, plus the memory the window costs.
"""

from __future__ import annotations

import sys

import pytest

from repro.clock import VirtualClock
from repro.config import DaemonConfig, EngineConfig, MonitorConfig
from repro.setups import daemon_setup

from conftest import format_table, write_result

FLOOD = 2000  # distinct statements between two polls
CAPACITIES = (100, 500, 1000, 4000)


def run_flood(capacity: int) -> tuple[int, int]:
    """Returns (workload rows persisted, approx buffer bytes)."""
    clock = VirtualClock(1_000_000.0)
    config = EngineConfig(monitor=MonitorConfig(
        workload_buffer_size=capacity,
        statement_buffer_size=capacity,
    ))
    setup = daemon_setup(
        "db", config=config, clock=clock,
        daemon_config=DaemonConfig(poll_interval_s=30.0,
                                   flush_every_polls=1))
    session = setup.engine.connect("db")
    session.execute("create table t (a int not null, primary key (a))")
    session.execute("insert into t values (1)")
    setup.daemon.poll_once()  # swallow the setup statements
    before = setup.workload_db.row_count("wl_workload")
    for i in range(FLOOD):
        session.execute(f"select a from t where a = {i}")
        clock.advance(30.0 / FLOOD)
    setup.daemon.poll_once()
    persisted = setup.workload_db.row_count("wl_workload") - before
    buffer_bytes = sum(
        sys.getsizeof(record) for record in setup.monitor.workload.values()
    )
    return persisted, buffer_bytes


def test_ablation_buffer_capacity(benchmark):
    results: dict[int, tuple[int, int]] = {}
    for capacity in CAPACITIES[:-1]:
        results[capacity] = run_flood(capacity)
    results[CAPACITIES[-1]] = benchmark.pedantic(
        run_flood, args=(CAPACITIES[-1],), rounds=1, iterations=1)

    rows = []
    for capacity in CAPACITIES:
        persisted, buffer_bytes = results[capacity]
        rows.append([
            str(capacity),
            f"{persisted}/{FLOOD}",
            f"{persisted / FLOOD * 100:.0f}%",
            f"{buffer_bytes / 1024:.0f} KiB",
        ])
    table = format_table(
        ["buffer capacity", "captured", "resolution", "window memory"],
        rows)
    write_result("ablation_buffer_capacity", table + (
        "\npaper: resolution = capacity / poll interval (default 1000/30s "
        "~ 33 stmts/s); raising capacity buys resolution for memory"))

    # Shape: capture scales with capacity until the flood fits entirely.
    captured = [results[c][0] for c in CAPACITIES]
    assert captured == sorted(captured)
    # an undersized window drops most of the flood ...
    assert results[100][0] <= 150
    # ... a window >= flood size captures everything the poll can see.
    assert results[4000][0] >= FLOOD * 0.95
    # each step up in capacity costs memory.
    assert results[4000][1] > results[100][1]
