"""Section V-A in-text metrics.

The paper reports (beyond the figures):

* each monitoring function call takes ~1-2 microseconds,
* monitoring adds 30-70 microseconds per statement (vs <30 us of pure
  execution for the 1m statements),
* the daemon's logging rate is capped by buffer capacity / interval
  (default 1000 statements / 30 s ~ 33 statements/s): beyond that the
  daemon writes the same number of rows per interval no matter how fast
  the DBMS runs,
* the workload DB grows at a constant rate (~28 MB/hour) and retention
  caps it (~4.7 GB for seven days).
"""

from __future__ import annotations

import pytest

from repro.clock import VirtualClock
from repro.config import DaemonConfig, MonitorConfig
from repro.core.monitor import IntegratedMonitor, MonitorSensors
from repro.core.sensors import statement_hash
from repro.setups import daemon_setup, monitoring_setup
from repro.workloads import load_nref, point_query_statements
from repro.workloads.nref import NrefScale

from conftest import BENCH_SCALE, format_table, write_result


class TestSensorOverhead:
    def test_per_call_and_per_statement_overhead(self, benchmark):
        """Sensor calls are microseconds-scale; a statement passes
        through a handful of them."""
        monitor = IntegratedMonitor(MonitorConfig())
        sensors = MonitorSensors(monitor)
        statements = point_query_statements(2000, BENCH_SCALE,
                                            distinct_ids=50)

        def drive():
            for text in statements:
                ctx = sensors.statement_start(text)
                sensors.parse_complete(ctx, "select", ("protein",))
                sensors.optimize_complete(ctx, 10.0, 1.0, (), (),
                                          (("protein", "nref_id"),), 0.0)
                sensors.execute_complete(ctx, 10.0, 1.0, 3, 0, 5, 1,
                                         0.0005, 0.0005)

        benchmark.pedantic(drive, rounds=3, iterations=1)
        per_call_us = monitor.average_sensor_call_s * 1e6
        per_statement_us = (monitor.sensor_time_s
                            / (len(statements) * 3)) * 1e6
        table = format_table(
            ["metric", "measured", "paper"],
            [["per sensor call", f"{per_call_us:.2f}us", "~1-2us"],
             ["added per statement", f"{per_statement_us:.2f}us",
              "30-70us"]],
        )
        write_result("text_sensor_overhead", table)
        # Shape: calls are microseconds, not milliseconds; the total per
        # statement stays within the same order of magnitude as the paper.
        assert per_call_us < 100.0
        assert per_statement_us < 400.0
        assert monitor.sensor_calls == len(statements) * 3 * 4


class TestDaemonLoggingRateCap:
    def test_rows_per_interval_capped_by_buffer(self, benchmark):
        """Past the buffer's capacity/interval rate, the daemon persists
        the same number of workload rows per poll no matter how many
        statements ran."""
        clock = VirtualClock(1_000_000.0)
        setup = daemon_setup(
            "db", clock=clock,
            daemon_config=DaemonConfig(poll_interval_s=30.0,
                                       flush_every_polls=1))
        # shrink the workload window to make the cap easy to exceed
        setup.monitor.workload.capacity = 200
        setup.monitor.workload._items = []
        session = setup.engine.connect("db")
        session.execute("create table t (a int not null, primary key (a))")
        session.execute("insert into t values (1)")

        persisted = []

        def one_round():
            # 500 executions between polls >> the 200-entry window
            before = setup.workload_db.row_count("wl_workload")
            for i in range(500):
                session.execute(f"select a from t where a = {i % 7}")
                clock.advance(0.01)
            setup.daemon.poll_once()
            persisted.append(
                setup.workload_db.row_count("wl_workload") - before)
            clock.advance(30.0)

        benchmark.pedantic(one_round, rounds=3, iterations=1)
        # every poll persisted (roughly) one full buffer, not 500 rows
        for rows in persisted:
            assert rows <= 230
        assert setup.monitor.workload.dropped > 0
        write_result("text_daemon_rate_cap", (
            f"workload rows persisted per 30s poll with a 200-entry "
            f"buffer and 500 stmts/interval: {persisted}\n"
            f"paper: at >1000 stmts/s the daemon always writes the same "
            f"amount of rows per interval"))


class TestWorkloadDbGrowthAndRetention:
    def test_growth_is_linear_and_retention_caps_it(self, benchmark):
        clock = VirtualClock(1_000_000.0)
        setup = daemon_setup(
            "db", clock=clock,
            daemon_config=DaemonConfig(poll_interval_s=30.0,
                                       flush_every_polls=1,
                                       retention_s=3600.0))
        session = setup.engine.connect("db")
        session.execute("create table t (a int not null, primary key (a))")
        session.execute("insert into t values (1)")

        sizes = []
        polls_per_hour = 120

        def simulate_one_hour(hour):
            for _ in range(polls_per_hour):
                session.execute(f"select a from t where a = {hour}")
                clock.advance(30.0)
                setup.daemon.poll_once()
            sizes.append(setup.workload_db.total_bytes)

        benchmark.pedantic(simulate_one_hour, args=(0,),
                           rounds=1, iterations=1)
        for hour in range(1, 4):
            simulate_one_hour(hour)
        # steady state: retention is 1h, so from hour 2 on the purge
        # offsets the appends and compaction reclaims the pages.
        growth = [b - a for a, b in zip(sizes, sizes[1:])]
        table = format_table(
            ["hour", "workload DB bytes"],
            [[str(i + 1), f"{size:,}"] for i, size in enumerate(sizes)],
        )
        write_result("text_workloaddb_growth", table + (
            "\npaper: ~28MB/hour growth, capped at ~4.7GB by 7-day "
            "retention (here: 1h retention at reduced rate)"))
        # growth happens in hour 1..2, then retention caps the size:
        # the last hour grows far less than the first (deletes offset
        # inserts once history ages out).
        assert sizes[0] > 0
        assert growth[-1] < sizes[0] * 0.5
        # retention actually deleted rows
        assert setup.daemon.total_rows_purged > 0


class TestAnalysisDuration:
    def test_analysis_time_bounded(self, benchmark):
        """Paper: 'the analysis took about 40 seconds' for 50
        statements — ours must stay in the same ballpark (it is pure
        in-memory work at this scale)."""
        from repro.core.analyzer import Analyzer
        from repro.workloads import WorkloadRunner, complex_query_set

        setup = daemon_setup("nref")
        load_nref(setup.engine.database("nref"), NrefScale(proteins=800))
        session = setup.engine.connect("nref")
        WorkloadRunner(session, keep_per_statement=False).run(
            complex_query_set(NrefScale(proteins=800), count=50))
        setup.daemon.poll_once()
        setup.daemon.flush()
        analyzer = Analyzer(setup.engine.database("nref"))
        report = benchmark.pedantic(
            lambda: analyzer.analyze_workload_db(setup.workload_db),
            rounds=1, iterations=1)
        assert report.duration_s < 40.0
        assert report.statements_analyzed >= 45
