"""Figure 8 — Locks Diagram: lock usage over time with wait and
deadlock indicators.

The paper visualizes the locking system's statistics — locks in use,
lock-wait events and deadlocks — "to help the DBA identifying
problems".  We drive a multi-session contention workload (readers,
writers, and a deliberately deadlock-prone transaction pair), sample
the lock statistics continuously, and render the same strip chart.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.analyzer.reports import locks_diagram
from repro.core.records import StatisticsRecord
from repro.errors import ReproError
from repro.setups import monitoring_setup

from conftest import write_result

RUN_SECONDS = 3.0
SAMPLE_INTERVAL = 0.1


@pytest.fixture(scope="module")
def contention_run():
    setup = monitoring_setup()
    engine = setup.engine
    engine.create_database("db")
    bootstrap = engine.connect("db")
    bootstrap.execute("create table acct_a (id int not null, n int, "
                      "primary key (id))")
    bootstrap.execute("create table acct_b (id int not null, n int, "
                      "primary key (id))")
    bootstrap.execute("insert into acct_a values (1, 0)")
    bootstrap.execute("insert into acct_b values (1, 0)")

    stop = threading.Event()
    samples: list[StatisticsRecord] = []

    def sampler():
        start = time.monotonic()
        while not stop.is_set():
            stats = engine.system_statistics()
            samples.append(StatisticsRecord(
                timestamp=round(time.monotonic() - start, 3),
                **{k: v for k, v in stats.items()
                   if k in StatisticsRecord.__dataclass_fields__}))
            time.sleep(SAMPLE_INTERVAL)

    def transfer(first: str, second: str):
        """Deadlock-prone: lock `first` then `second` in one txn."""
        with engine.connect("db") as session:
            deadline = time.monotonic() + RUN_SECONDS
            while time.monotonic() < deadline:
                try:
                    session.execute("begin")
                    session.execute(f"update {first} set n = n + 1")
                    time.sleep(0.01)
                    session.execute(f"update {second} set n = n - 1")
                    session.execute("commit")
                except ReproError:
                    try:
                        session.execute("rollback")
                    except ReproError:
                        pass

    def reader():
        with engine.connect("db") as session:
            deadline = time.monotonic() + RUN_SECONDS
            while time.monotonic() < deadline:
                try:
                    session.execute("select n from acct_a")
                    session.execute("select n from acct_b")
                except ReproError:
                    pass
                time.sleep(0.002)

    threads = [
        threading.Thread(target=transfer, args=("acct_a", "acct_b")),
        threading.Thread(target=transfer, args=("acct_b", "acct_a")),
        threading.Thread(target=reader),
        threading.Thread(target=reader),
    ]
    sampler_thread = threading.Thread(target=sampler)
    sampler_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stop.set()
    sampler_thread.join()
    return engine, samples


def test_fig8_locks_diagram(contention_run, benchmark):
    engine, samples = contention_run
    diagram = benchmark.pedantic(
        lambda: locks_diagram([s.as_row() for s in samples]),
        rounds=1, iterations=1)
    rendered = diagram.render()
    stats = engine.lock_manager.statistics()
    summary = (f"\nfinal lock statistics: requests={stats.total_requests} "
               f"waits={stats.total_waits} deadlocks={stats.total_deadlocks}"
               f"\npaper: locks-over-time strip with wait (W) and deadlock "
               f"(D!) markers")
    write_result("fig8_locks_diagram", rendered + summary)

    # Shape assertions.
    # 1) continuous sampling produced a real time series.
    assert len(diagram.samples) >= 10
    # 2) the contention workload produced lock waits...
    assert sum(n for _t, n in diagram.wait_events) > 0
    # 3) ...and the opposing-order transfer pair produced deadlocks,
    #    which the diagram marks.
    assert sum(n for _t, n in diagram.deadlock_events) > 0
    assert "W" in rendered
    assert "D!" in rendered
    # 4) the engine stayed consistent: the lock manager agrees with the
    #    sampled series.
    assert stats.total_deadlocks >= sum(
        n for _t, n in diagram.deadlock_events)
