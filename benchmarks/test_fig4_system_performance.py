"""Figure 4 — System Performance: monitoring overhead per setup.

Paper result (relative runtime vs. the untouched instance):

* ``50`` complex queries:   Monitoring < +1 %, Daemon ~ +1 %
* ``50k`` simple joins:     both within ~1 %
* ``1m`` trivial queries:   Monitoring ~ +11 %, Daemon ~ +17 %

The shape to reproduce: overhead negligible for expensive statements
and clearly visible (but bounded) for very high statement rates, with
the daemon adding on top of the in-core monitoring.

Methodology: every (setup, workload) cell runs in a **fresh
subprocess** (see ``fig4_driver.py``), min-of-2 inside the process —
so neither heap growth nor GC state from one measurement can bleed
into another.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from conftest import format_table, write_result

DRIVER = pathlib.Path(__file__).parent / "fig4_driver.py"
SETUPS = ("original", "monitoring", "daemon")
WORKLOAD_NAMES = ("50", "50k", "1m")


def run_cell(setup: str, workload: str) -> float:
    completed = subprocess.run(
        [sys.executable, str(DRIVER), setup, workload],
        capture_output=True, text=True, timeout=600,
        cwd=str(DRIVER.parent),
    )
    if completed.returncode != 0:
        raise AssertionError(
            f"driver failed for ({setup}, {workload}):\n{completed.stderr}")
    return json.loads(completed.stdout)["seconds"]


@pytest.fixture(scope="module")
def measurements():
    results: dict[str, dict[str, float]] = {kind: {} for kind in SETUPS}
    for workload in WORKLOAD_NAMES:
        for kind in SETUPS:
            results[kind][workload] = run_cell(kind, workload)
    return results


def test_fig4_report_and_shape(measurements, benchmark):
    # Register one representative cell as the pytest-benchmark sample
    # (the comparative data comes from the subprocess measurements).
    benchmark.pedantic(run_cell, args=("monitoring", "50"),
                       rounds=1, iterations=1)

    rows = []
    relative: dict[str, dict[str, float]] = {}
    for workload in WORKLOAD_NAMES:
        base = measurements["original"][workload]
        relative[workload] = {
            kind: measurements[kind][workload] / base
            for kind in measurements
        }
        rows.append([
            workload,
            f"{base:.2f}s",
            f"{relative[workload]['monitoring'] * 100:.1f}%",
            f"{relative[workload]['daemon'] * 100:.1f}%",
        ])
    table = format_table(
        ["test", "original", "monitoring (rel)", "daemon (rel)"], rows)
    paper = ("paper: 50 -> ~100%/<101%; 50k -> ~100%/~100.5%; "
             "1m -> ~111%/~117%")
    write_result("fig4_system_performance", table + "\n" + paper)

    # Shape assertions (tolerances allow wall-clock noise).
    # 1) complex statements: monitoring overhead small (paper: <1 %).
    assert relative["50"]["monitoring"] < 1.20
    # 2) the 1m trivial-statement flood shows at least as much
    #    monitoring overhead as the complex set (the paper's key point).
    assert relative["1m"]["monitoring"] >= relative["50"]["monitoring"] - 0.10
    # 3) the daemon adds overhead on top of in-core monitoring for the
    #    trivial-statement flood.
    assert relative["1m"]["daemon"] >= relative["1m"]["monitoring"] - 0.05
    # 4) nothing is catastrophically slower (paper max: 117 %).
    for workload in WORKLOAD_NAMES:
        assert relative[workload]["daemon"] < 2.0
