"""Setuptools entry point.

A setup.py is kept (alongside pyproject.toml metadata) so that editable
installs work in offline environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Integrated performance monitoring for autonomous tuning "
        "(ICDE 2009 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
