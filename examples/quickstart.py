#!/usr/bin/env python3
"""Quickstart: create a monitored engine, run SQL, inspect monitor data.

Runs in a few seconds and shows the three data categories the paper's
monitor collects — workload, catalog and system statistics — arriving
in the IMA virtual tables as ordinary statements execute.
"""

from repro import daemon_setup


def main() -> None:
    # A "Daemon" setup: engine + integrated monitor + IMA virtual tables
    # + storage daemon wired to a persistent workload database.
    setup = daemon_setup("demo")
    session = setup.engine.connect("demo")

    print("== create a table and load a few rows ==")
    session.execute(
        "create table employee ("
        "  id int not null, name varchar(40), dept varchar(20),"
        "  salary float, primary key (id))"
    )
    rows = ", ".join(
        f"({i}, 'emp{i}', 'dept{i % 5}', {30000 + (i * 137) % 40000})"
        for i in range(1, 401)
    )
    session.execute(f"insert into employee values {rows}")

    print("== run some queries ==")
    result = session.execute(
        "select dept, count(*) headcount, avg(salary) avg_salary "
        "from employee group by dept order by avg_salary desc"
    )
    for row in result.rows:
        print(f"  {row[0]}: {row[1]} people, avg {row[2]:,.0f}")

    session.execute("select name from employee where salary > 60000")
    session.execute("select count(*) from employee where dept = 'dept3'")

    print("\n== the monitor saw everything (via IMA, plain SQL) ==")
    captured = session.execute(
        "select frequency, query_text from ima_statements"
    )
    for frequency, text in captured.rows:
        print(f"  x{frequency}  {text[:70]}")

    print("\n== per-execution costs (ima_workload) ==")
    workload = session.execute(
        "select actual_io, estimated_io, wallclock_s, rows_returned "
        "from ima_workload"
    )
    for actual, estimated, wallclock, rows_returned in workload.rows[-4:]:
        print(f"  actual={actual:8.1f}  estimated={estimated:8.1f}  "
              f"wall={wallclock * 1e3:6.2f}ms  rows={rows_returned}")

    print("\n== persist to the workload database ==")
    stats = setup.daemon.poll_once()
    setup.daemon.flush()
    print(f"  daemon collected {stats.rows_collected} rows; "
          f"workload DB now holds {setup.workload_db.total_rows()} rows "
          f"({setup.workload_db.total_bytes / 1024:.0f} KiB)")

    print("\n== engine-wide statistics ==")
    for key, value in setup.engine.system_statistics().items():
        print(f"  {key}: {value}")


if __name__ == "__main__":
    main()
