#!/usr/bin/env python3
"""Live monitoring: background daemon, alert triggers and lock diagram.

Demonstrates the operational side of the paper's system: the storage
daemon running as a real background thread, alert triggers on the
workload database firing as thresholds are crossed, and the lock
statistics strip chart rendered from a concurrent contention workload.
"""

import threading
import time

from repro import daemon_setup
from repro.config import DaemonConfig
from repro.core.alerts import (
    add_alert_listener,
    fired_alerts,
    install_standard_alerts,
)
from repro.core.analyzer.reports import locks_diagram
from repro.errors import ReproError

RUN_SECONDS = 3.0


def main() -> None:
    setup = daemon_setup(
        "live",
        daemon_config=DaemonConfig(poll_interval_s=0.5,
                                   flush_every_polls=2),
    )
    engine = setup.engine
    session = engine.connect("live")
    session.execute("create table account (id int not null, balance int, "
                    "primary key (id)) with main_pages = 1")
    session.execute("insert into account values (1, 1000), (2, 1000)")

    install_standard_alerts(setup.workload_db, max_sessions=3,
                            lock_wait_threshold=5)
    add_alert_listener(
        setup.workload_db,
        lambda alert: print(f"  !! ALERT [{alert.trigger_name}] "
                            f"{alert.message}"))

    print("starting the storage daemon (background thread) ...")
    setup.daemon.start()

    print(f"running a contention workload for {RUN_SECONDS:.0f}s ...")

    def transfer(first: int, second: int) -> None:
        with engine.connect("live") as worker:
            deadline = time.monotonic() + RUN_SECONDS
            while time.monotonic() < deadline:
                try:
                    worker.execute("begin")
                    worker.execute(f"update account set balance = "
                                   f"balance - 10 where id = {first}")
                    time.sleep(0.005)
                    worker.execute(f"update account set balance = "
                                   f"balance + 10 where id = {second}")
                    worker.execute("commit")
                except ReproError:
                    try:
                        worker.execute("rollback")
                    except ReproError:
                        pass

    def reader() -> None:
        with engine.connect("live") as worker:
            deadline = time.monotonic() + RUN_SECONDS
            while time.monotonic() < deadline:
                try:
                    worker.execute("select sum(balance) from account")
                except ReproError:
                    pass
                time.sleep(0.01)

    threads = [
        threading.Thread(target=transfer, args=(1, 2)),
        threading.Thread(target=transfer, args=(2, 1)),
        threading.Thread(target=reader),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    print("stopping the daemon (final flush) ...")
    setup.daemon.stop()

    locks = engine.lock_manager.statistics()
    print(f"\nlock system: {locks.total_requests} requests, "
          f"{locks.total_waits} waits, {locks.total_deadlocks} deadlocks")

    print(f"workload DB: {setup.workload_db.total_rows()} rows, "
          f"{setup.daemon.total_polls} polls, "
          f"{setup.daemon.total_rows_flushed} rows flushed")

    alerts = fired_alerts(setup.workload_db)
    print(f"\n{len(alerts)} alert(s) fired; distinct triggers: "
          f"{sorted({a.trigger_name for a in alerts})}")

    print("\nlocks diagram (from the persisted statistics):")
    statistics_rows = [
        row for _rowid, row in
        setup.workload_db.database.storage_for("wl_statistics").scan()
    ]
    print(locks_diagram(statistics_rows).render(width=40))

    total = session.execute("select sum(balance) from account").scalar()
    print(f"\ninvariant check: total balance = {total} (expected 2000)")


if __name__ == "__main__":
    main()
