#!/usr/bin/env python3
"""Fully autonomous tuning (the paper's section VI outlook).

Runs the control loop without a DBA in it: the workload shifts over
three phases, and after each phase the :class:`AutonomousTuner` polls
the daemon, analyzes, filters recommendations through the dependency
graph and the safety policy, and applies the survivors on its own.
"""

from repro import AutonomousTuner, TuningPolicy, daemon_setup
from repro.workloads import NrefScale, WorkloadRunner, load_nref
from repro.workloads.nref import nref_id

SCALE = NrefScale(proteins=1200)


def phase_1_point_lookups(runner: WorkloadRunner) -> None:
    """OLTP-ish phase: selective lookups by taxon."""
    runner.run([
        f"select name from protein where tax_id = {tax}"
        for tax in range(60, 90)
    ])


def phase_2_joins(runner: WorkloadRunner) -> None:
    """Reporting phase: joins over protein/organism/sequence."""
    runner.run([
        "select p.name, o.organism_name from protein p "
        f"join organism o on p.nref_id = o.nref_id where o.tax_id = {tax}"
        for tax in range(20, 35)
    ] + [
        "select s.crc from protein p join sequence s "
        f"on p.nref_id = s.nref_id where p.nref_id = '{nref_id(i)}'"
        for i in range(1, 15)
    ])


def phase_3_ranges(runner: WorkloadRunner) -> None:
    """Analytical phase: range scans and aggregation."""
    runner.run([
        "select count(*), avg(mol_weight) from protein "
        f"where length between {lo} and {lo + 20}"
        for lo in range(30, 100, 10)
    ])


def main() -> None:
    setup = daemon_setup("nref")
    load_nref(setup.engine.database("nref"), SCALE)
    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)

    policy = TuningPolicy(
        min_index_benefit=1.0,
        disk_budget_bytes=2 * 1024 * 1024,
        max_changes_per_cycle=8,
    )
    tuner = AutonomousTuner(setup.engine, "nref", setup.workload_db,
                            daemon=setup.daemon, policy=policy)

    phases = [
        ("point lookups", phase_1_point_lookups),
        ("join reporting", phase_2_joins),
        ("range analytics", phase_3_ranges),
    ]
    for name, run_phase in phases:
        print(f"\n=== workload phase: {name} ===")
        run_phase(runner)
        report = tuner.run_cycle()
        print(report.describe())

    print(f"\ntotal changes applied autonomously: "
          f"{tuner.total_changes_applied}")
    database = setup.engine.database("nref")
    print("physical design now:")
    for entry in database.catalog.tables():
        if entry.is_virtual:
            continue
        indexes = [i.name for i in
                   database.catalog.indexes_on(entry.schema.name)]
        print(f"  {entry.schema.name}: {entry.structure.value}"
              + (f", indexes: {', '.join(indexes)}" if indexes else ""))


if __name__ == "__main__":
    main()
