#!/usr/bin/env python3
"""What-if index analysis walkthrough.

Shows the mechanism behind the analyzer's index advisor (the paper's
virtual indexes, after AutoAdmin [14]): hypothetical indexes live only
in the catalog, the engine's own optimizer costs them, and whether it
*chooses* one is the signal that the index would pay off.
"""

from repro import monitoring_setup
from repro.catalog.schema import IndexDef
from repro.core.analyzer.index_advisor import IndexAdvisor
from repro.optimizer.what_if import what_if_optimize
from repro.workloads import NrefScale, load_nref

SCALE = NrefScale(proteins=1500)


def main() -> None:
    setup = monitoring_setup()
    database = setup.engine.create_database("nref")
    print(f"loading NREF at scale {SCALE.proteins} proteins ...")
    load_nref(database, SCALE)
    session = setup.engine.connect("nref")
    for table in ("protein", "organism"):
        session.execute(f"create statistics on {table}")

    query = ("select name, mol_weight from protein "
             "where tax_id = 77 and length > 60")
    print(f"\nquery: {query}")
    print("\nplan without any indexes:")
    print("  " + session.explain(query).replace("\n", "\n  "))

    print("\n-- what-if: would an index on (tax_id) help? --")
    candidate = IndexDef("v_tax", "protein", ("tax_id",), virtual=True)
    outcome = what_if_optimize(database, query, [candidate])
    print(f"  estimated cost without: {outcome.baseline_cost:10.1f}")
    print(f"  estimated cost with:    {outcome.hypothetical_cost:10.1f}")
    print(f"  benefit:                {outcome.benefit:10.1f}")
    print(f"  virtual indexes chosen: {outcome.virtual_indexes_used}")

    print("\n-- the advisor generates candidates automatically --")
    advisor = IndexAdvisor(database)
    for definition in advisor.candidates_for(query):
        print(f"  candidate: {definition.name} on "
              f"{definition.table_name}({', '.join(definition.column_names)})")

    print("\n-- a join query: lookup-join candidates --")
    join_query = ("select p.name, o.organism_name from protein p "
                  "join organism o on p.nref_id = o.nref_id "
                  "where o.tax_id = 12")
    candidates = advisor.candidates_for(join_query)
    outcome = what_if_optimize(database, join_query, candidates)
    print(f"  query: {join_query}")
    print(f"  baseline cost:     {outcome.baseline_cost:10.1f}")
    print(f"  with virtual idx:  {outcome.hypothetical_cost:10.1f}")
    print(f"  chosen:            {outcome.virtual_indexes_used}")

    print("\n-- materialize the winning index and verify the plan --")
    for name in outcome.virtual_indexes_used:
        definition = next(d for d in candidates if d.name == name)
        real_name = f"idx_{definition.table_name}_" \
            + "_".join(definition.column_names)
        columns = ", ".join(definition.column_names)
        session.execute(f"create index {real_name} on "
                        f"{definition.table_name} ({columns})")
        print(f"  created {real_name}")
    print("  plan now:")
    print("  " + session.explain(join_query).replace("\n", "\n  "))

    result = session.execute(join_query)
    print(f"\n  query returns {len(result.rows)} rows; "
          f"actual logical reads: {result.metrics.logical_reads}")


if __name__ == "__main__":
    main()
