#!/usr/bin/env python3
"""The full control loop on the NREF workload: monitor -> store ->
analyze -> implement -> measure the improvement.

This is the paper's section V-B experiment in miniature: record the
50-query workload on the unoptimized database, let the analyzer derive
recommendations (statistics, B-Tree conversions, what-if-validated
indexes), apply them, and re-run the workload.
"""

import time

from repro import daemon_setup
from repro.core.analyzer import Analyzer, apply_recommendations
from repro.workloads import (
    NrefScale,
    WorkloadRunner,
    complex_query_set,
    load_nref,
)

SCALE = NrefScale(proteins=1500)


def main() -> None:
    setup = daemon_setup("nref")
    database = setup.engine.database("nref")
    print("loading the synthetic NREF database "
          f"({SCALE.approximate_rows:,} rows) ...")
    counts = load_nref(database, SCALE)
    print("  " + ", ".join(f"{t}={n:,}" for t, n in counts.items()))
    print(f"  database size: {database.total_bytes / 1e6:.1f} MB "
          f"(unoptimized heaps)")

    session = setup.engine.connect("nref")
    runner = WorkloadRunner(session, keep_per_statement=False)
    queries = complex_query_set(SCALE, count=50)

    print("\nrunning the 50-query workload on the unoptimized database ...")
    started = time.perf_counter()
    baseline = runner.run(queries)
    baseline_s = time.perf_counter() - started
    print(f"  {baseline.statements} statements, "
          f"{baseline.rows_returned:,} rows, {baseline_s:.2f}s")

    print("\npersisting monitor data to the workload DB ...")
    setup.daemon.poll_once()
    setup.daemon.flush()

    print("\nanalyzing the recorded workload ...")
    analyzer = Analyzer(database)
    report = analyzer.analyze_workload_db(setup.workload_db)
    print(f"  statements analyzed: {report.statements_analyzed}")
    print(f"  cost-divergent statements: "
          f"{len(report.findings.divergent_statements)}")
    print(f"  overflow tables: "
          f"{', '.join(report.findings.overflow_tables) or '-'}")
    print("\nrecommendations:")
    for recommendation in report.recommendations:
        print(f"  {recommendation.describe()}")

    print("\napplying recommendations ...")
    applied = apply_recommendations(session, report.recommendations)
    ok = sum(1 for a in applied if a.succeeded)
    print(f"  {ok}/{len(applied)} applied successfully")

    print("\nre-running the same workload on the tuned database ...")
    started = time.perf_counter()
    tuned = runner.run(queries)
    tuned_s = time.perf_counter() - started
    print(f"  {tuned.statements} statements, "
          f"{tuned.rows_returned:,} rows, {tuned_s:.2f}s")

    assert tuned.rows_returned == baseline.rows_returned, \
        "tuning must not change query results"
    print(f"\nresult: runtime cut to {tuned_s / baseline_s:.0%} of the "
          f"unoptimized run (paper: ~62%)")
    print(f"database size now: {database.total_bytes / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
